"""Unit tests for the Agarwal et al. merging algorithm."""

import numpy as np
import pytest

from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.sketches.merge import (
    merge_many,
    merge_many_arrays,
    merge_misra_gries,
    merge_tree,
    sum_counters,
)
from repro.streams import zipf_stream, split_contiguous


class TestMergeTwo:
    def test_small_inputs_simply_sum(self):
        merged = merge_misra_gries({"a": 2.0}, {"a": 1.0, "b": 3.0}, k=4)
        assert merged == {"a": 3.0, "b": 3.0}

    def test_reduction_to_k_counters(self):
        first = {"a": 10.0, "b": 5.0, "c": 2.0}
        second = {"d": 7.0, "e": 1.0}
        merged = merge_misra_gries(first, second, k=2)
        assert len(merged) <= 2
        # The (k+1) = 3rd largest combined counter is 5, so a -> 5, d -> 2.
        assert merged == {"a": 5.0, "d": 2.0}

    def test_accepts_sketch_objects(self):
        left = MisraGriesSketch.from_stream(4, [1, 1, 2])
        right = MisraGriesSketch.from_stream(4, [1, 3])
        merged = merge_misra_gries(left, right, k=4)
        assert merged[1] == 3.0

    def test_rejects_negative_counters(self):
        with pytest.raises(SketchStateError):
            merge_misra_gries({"a": -1.0}, {}, k=2)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            merge_misra_gries({}, {}, k=0)

    def test_rejects_non_mapping(self):
        with pytest.raises(ParameterError):
            merge_misra_gries([("a", 1.0)], {}, k=2)


class TestMergeMany:
    def test_empty_list(self):
        assert merge_many([], k=4) == {}

    def test_single_oversized_input_reduced(self):
        counters = {i: float(i + 1) for i in range(10)}
        merged = merge_many([counters], k=3)
        assert len(merged) <= 3

    def test_error_bound_preserved_across_merges(self):
        # Lemma 29: merged sketches have error at most N/(k+1).
        stream = zipf_stream(6_000, 150, exponent=1.2, rng=0)
        truth = ExactCounter.from_stream(stream)
        k = 16
        parts = split_contiguous(stream, 6)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        merged = merge_many(sketches, k)
        bound = len(stream) / (k + 1)
        for element in range(150):
            estimate = merged.get(element, 0.0)
            exact = truth.estimate(element)
            assert exact - bound - 1e-9 <= estimate <= exact + 1e-9

    def test_merge_order_keeps_guarantee(self):
        stream = zipf_stream(2_000, 60, exponent=1.3, rng=1)
        truth = ExactCounter.from_stream(stream)
        k = 8
        parts = split_contiguous(stream, 4)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        forward = merge_many(sketches, k)
        backward = merge_many(list(reversed(sketches)), k)
        bound = len(stream) / (k + 1)
        for merged in (forward, backward):
            for element in range(60):
                assert truth.estimate(element) - bound - 1e-9 <= merged.get(element, 0.0)

    def test_result_size_bounded(self):
        sketches = [{i + offset: 1.0 for i in range(10)} for offset in (0, 5, 10)]
        assert len(merge_many(sketches, k=5)) <= 5


class TestMergeManyArrays:
    def test_matches_dict_merge(self):
        keys_list = [np.array([1, 2, 3]), np.array([2, 4])]
        values_list = [np.array([2.0, 5.0, 1.0]), np.array([3.0, 7.0])]
        dicts = [dict(zip(keys.tolist(), values.tolist()))
                 for keys, values in zip(keys_list, values_list)]
        assert merge_many_arrays(keys_list, values_list, 3) == merge_many(dicts, 3)

    def test_empty_collection(self):
        assert merge_many_arrays([], [], 4) == {}

    def test_single_sketch_passthrough(self):
        merged = merge_many_arrays([np.array([5, 6])], [np.array([1.0, 0.0])], 4)
        assert merged == {5: 1.0, 6: 0.0}  # seed keeps zeros for a single input

    def test_negative_counter_raises(self):
        with pytest.raises(SketchStateError):
            merge_many_arrays([np.array([1]), np.array([2])],
                              [np.array([1.0]), np.array([-2.0])], 4)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ParameterError):
            merge_many_arrays([np.array([1])], [], 4)
        with pytest.raises(ParameterError):
            merge_many_arrays([np.array([1, 2])], [np.array([1.0])], 4)

    def test_non_integer_keys_raise(self):
        with pytest.raises(ParameterError):
            merge_many_arrays([np.array([1.5])], [np.array([1.0])], 4)

    def test_wide_key_range_uses_unique_interning(self):
        keys_list = [np.array([0, 2 ** 60]), np.array([2 ** 60, -2 ** 60])]
        values_list = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        dicts = [dict(zip(keys.tolist(), values.tolist()))
                 for keys, values in zip(keys_list, values_list)]
        assert merge_many_arrays(keys_list, values_list, 8) == merge_many(dicts, 8)


class TestMergeTree:
    def test_matches_pairwise_reduction_guarantee(self):
        stream = zipf_stream(4_000, 100, exponent=1.2, rng=3)
        truth = ExactCounter.from_stream(stream)
        k = 12
        parts = split_contiguous(stream, 8)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        merged = merge_tree(sketches, k)
        assert len(merged) <= k
        bound = len(stream) / (k + 1)
        for element in range(100):
            estimate = merged.get(element, 0.0)
            assert truth.estimate(element) - bound - 1e-9 <= estimate

    def test_empty_and_single(self):
        assert merge_tree([], 4) == {}
        assert merge_tree([{"a": 2.0}], 4) == {"a": 2.0}

    def test_odd_count_carries_last_sketch(self):
        sketches = [{i: 1.0} for i in range(5)]
        merged = merge_tree(sketches, 8)
        assert merged == {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}

    def test_result_size_bounded(self):
        sketches = [{i + offset: 1.0 for i in range(10)} for offset in (0, 5, 10)]
        assert len(merge_tree(sketches, k=5)) <= 5


class TestSumCounters:
    def test_plain_sum(self):
        total = sum_counters([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert total == {"a": 4.0, "b": 2.0}

    def test_accepts_sketches(self):
        left = MisraGriesSketch.from_stream(4, [1, 1])
        right = MisraGriesSketch.from_stream(4, [1])
        assert sum_counters([left, right])[1] == 3.0

    def test_empty(self):
        assert sum_counters([]) == {}


class TestMergeManyArraysDtypeSafety:
    def test_empty_float_key_array_does_not_poison_dtype(self):
        merged = merge_many_arrays(
            [np.array([2 ** 53, 2 ** 53 + 1]), np.array([])],
            [np.array([5.0, 7.0]), np.array([])], 10)
        assert merged == {2 ** 53: 5.0, 2 ** 53 + 1: 7.0}

    def test_mixed_signed_unsigned_keys_stay_exact(self):
        merged = merge_many_arrays(
            [np.array([2 ** 53, 1], dtype=np.int64),
             np.array([2 ** 53 + 1, 1], dtype=np.uint64)],
            [np.array([5.0, 1.0]), np.array([7.0, 2.0])], 10)
        assert merged == {2 ** 53: 5.0, 2 ** 53 + 1: 7.0, 1: 3.0}
        assert all(type(key) is int for key in merged)

    def test_all_empty_sketches(self):
        assert merge_many_arrays([np.array([]), np.array([])],
                                 [np.array([]), np.array([])], 4) == {}
