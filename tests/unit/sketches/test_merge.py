"""Unit tests for the Agarwal et al. merging algorithm."""

import pytest

from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.sketches.merge import merge_many, merge_misra_gries, sum_counters
from repro.streams import zipf_stream, split_contiguous


class TestMergeTwo:
    def test_small_inputs_simply_sum(self):
        merged = merge_misra_gries({"a": 2.0}, {"a": 1.0, "b": 3.0}, k=4)
        assert merged == {"a": 3.0, "b": 3.0}

    def test_reduction_to_k_counters(self):
        first = {"a": 10.0, "b": 5.0, "c": 2.0}
        second = {"d": 7.0, "e": 1.0}
        merged = merge_misra_gries(first, second, k=2)
        assert len(merged) <= 2
        # The (k+1) = 3rd largest combined counter is 5, so a -> 5, d -> 2.
        assert merged == {"a": 5.0, "d": 2.0}

    def test_accepts_sketch_objects(self):
        left = MisraGriesSketch.from_stream(4, [1, 1, 2])
        right = MisraGriesSketch.from_stream(4, [1, 3])
        merged = merge_misra_gries(left, right, k=4)
        assert merged[1] == 3.0

    def test_rejects_negative_counters(self):
        with pytest.raises(SketchStateError):
            merge_misra_gries({"a": -1.0}, {}, k=2)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            merge_misra_gries({}, {}, k=0)

    def test_rejects_non_mapping(self):
        with pytest.raises(ParameterError):
            merge_misra_gries([("a", 1.0)], {}, k=2)


class TestMergeMany:
    def test_empty_list(self):
        assert merge_many([], k=4) == {}

    def test_single_oversized_input_reduced(self):
        counters = {i: float(i + 1) for i in range(10)}
        merged = merge_many([counters], k=3)
        assert len(merged) <= 3

    def test_error_bound_preserved_across_merges(self):
        # Lemma 29: merged sketches have error at most N/(k+1).
        stream = zipf_stream(6_000, 150, exponent=1.2, rng=0)
        truth = ExactCounter.from_stream(stream)
        k = 16
        parts = split_contiguous(stream, 6)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        merged = merge_many(sketches, k)
        bound = len(stream) / (k + 1)
        for element in range(150):
            estimate = merged.get(element, 0.0)
            exact = truth.estimate(element)
            assert exact - bound - 1e-9 <= estimate <= exact + 1e-9

    def test_merge_order_keeps_guarantee(self):
        stream = zipf_stream(2_000, 60, exponent=1.3, rng=1)
        truth = ExactCounter.from_stream(stream)
        k = 8
        parts = split_contiguous(stream, 4)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        forward = merge_many(sketches, k)
        backward = merge_many(list(reversed(sketches)), k)
        bound = len(stream) / (k + 1)
        for merged in (forward, backward):
            for element in range(60):
                assert truth.estimate(element) - bound - 1e-9 <= merged.get(element, 0.0)

    def test_result_size_bounded(self):
        sketches = [{i + offset: 1.0 for i in range(10)} for offset in (0, 5, 10)]
        assert len(merge_many(sketches, k=5)) <= 5


class TestSumCounters:
    def test_plain_sum(self):
        total = sum_counters([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert total == {"a": 4.0, "b": 2.0}

    def test_accepts_sketches(self):
        left = MisraGriesSketch.from_stream(4, [1, 1])
        right = MisraGriesSketch.from_stream(4, [1])
        assert sum_counters([left, right])[1] == 3.0

    def test_empty(self):
        assert sum_counters([]) == {}
