"""Unit tests for the paper-variant Misra-Gries sketch (Algorithm 1)."""

import pytest

from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.sketches.misra_gries import DummyKey
from repro.streams import zipf_stream


class TestConstruction:
    def test_requires_positive_k(self):
        with pytest.raises(ParameterError):
            MisraGriesSketch(0)

    def test_starts_with_k_dummy_counters(self):
        sketch = MisraGriesSketch(5)
        raw = sketch.raw_counters()
        assert len(raw) == 5
        assert all(isinstance(key, DummyKey) for key in raw)
        assert all(value == 0.0 for value in raw.values())

    def test_counters_view_hides_dummies(self):
        assert MisraGriesSketch(3).counters() == {}

    def test_memory_words(self):
        assert MisraGriesSketch(8).memory_words() == 16


class TestUpdates:
    def test_single_element(self):
        sketch = MisraGriesSketch(2)
        sketch.update("a")
        assert sketch.estimate("a") == 1.0
        assert sketch.stream_length == 1

    def test_increment_branch(self):
        sketch = MisraGriesSketch(2)
        sketch.update_all(["a", "a", "a"])
        assert sketch.estimate("a") == 3.0

    def test_always_exactly_k_keys_stored(self):
        sketch = MisraGriesSketch(4)
        sketch.update_all(zipf_stream(500, 50, rng=0))
        assert len(sketch.raw_counters()) == 4

    def test_decrement_branch(self):
        # k=2: after a, b the sketch is full with counts 1,1; c triggers the
        # decrement-all branch.
        sketch = MisraGriesSketch(2)
        sketch.update_all(["a", "b", "c"])
        assert sketch.estimate("a") == 0.0
        assert sketch.estimate("b") == 0.0
        assert sketch.estimate("c") == 0.0
        assert sketch.decrement_rounds == 1
        # The keys a, b are still stored (zero counters are kept).
        assert {"a", "b"} <= sketch.stored_keys()

    def test_replace_smallest_zero_key(self):
        sketch = MisraGriesSketch(2)
        sketch.update_all(["a", "b", "c"])  # a, b stored with count 0
        sketch.update("d")
        # "a" is the smallest zero-count key, so it is replaced by "d".
        assert "a" not in sketch.stored_keys()
        assert "b" in sketch.stored_keys()
        assert sketch.estimate("d") == 1.0

    def test_dummy_keys_evicted_after_real_keys(self):
        sketch = MisraGriesSketch(3)
        sketch.update("x")
        # Two dummies remain; the next new element replaces a dummy, not "x".
        sketch.update("y")
        assert sketch.estimate("x") == 1.0
        assert sketch.estimate("y") == 1.0

    def test_rejects_dummy_key_input(self):
        sketch = MisraGriesSketch(2)
        with pytest.raises(SketchStateError):
            sketch.update(DummyKey(1))

    def test_estimate_of_dummy_is_zero(self):
        sketch = MisraGriesSketch(2)
        assert sketch.estimate(DummyKey(1)) == 0.0


class TestGuarantees:
    def test_fact7_error_bound_on_zipf(self):
        stream = zipf_stream(5_000, 200, exponent=1.1, rng=1)
        truth = ExactCounter.from_stream(stream)
        for k in (4, 16, 64):
            sketch = MisraGriesSketch.from_stream(k, stream)
            bound = len(stream) / (k + 1)
            for element in range(200):
                estimate = sketch.estimate(element)
                exact = truth.estimate(element)
                assert exact - bound <= estimate <= exact

    def test_never_overestimates(self):
        stream = [1, 1, 2, 3, 1, 4, 1, 5]
        sketch = MisraGriesSketch.from_stream(2, stream)
        truth = ExactCounter.from_stream(stream)
        for element in set(stream):
            assert sketch.estimate(element) <= truth.estimate(element)

    def test_error_bound_helper(self):
        sketch = MisraGriesSketch.from_stream(9, range(100))
        assert sketch.error_bound() == pytest.approx(10.0)

    def test_heavy_element_survives(self):
        # A strict majority element is always reported with a positive count.
        stream = [7] * 60 + list(range(50))
        sketch = MisraGriesSketch.from_stream(8, stream)
        assert sketch.estimate(7) > 0

    def test_from_stream_equals_manual_updates(self):
        stream = zipf_stream(300, 30, rng=2)
        manual = MisraGriesSketch(6)
        manual.update_all(stream)
        auto = MisraGriesSketch.from_stream(6, stream)
        assert manual.raw_counters() == auto.raw_counters()


class TestStoredKeyOrderIndependence:
    def test_eviction_is_deterministic(self):
        stream = zipf_stream(1_000, 40, rng=3)
        first = MisraGriesSketch.from_stream(5, stream)
        second = MisraGriesSketch.from_stream(5, stream)
        assert first.raw_counters() == second.raw_counters()

    def test_repr_mentions_size(self):
        assert "k=5" in repr(MisraGriesSketch(5))
