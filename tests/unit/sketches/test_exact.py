"""Unit tests for the exact counter."""

import pytest

from repro.sketches import ExactCounter


class TestExactCounter:
    def test_counts_exactly(self):
        counter = ExactCounter.from_stream([1, 2, 1, 1, 3])
        assert counter.estimate(1) == 3.0
        assert counter.estimate(2) == 1.0
        assert counter.estimate(4) == 0.0

    def test_stream_length_and_distinct(self):
        counter = ExactCounter.from_stream(["a", "b", "a"])
        assert counter.stream_length == 3
        assert counter.distinct() == 2

    def test_top(self):
        counter = ExactCounter.from_stream([1, 1, 1, 2, 2, 3])
        assert counter.top(2) == [(1, 3.0), (2, 2.0)]

    def test_update_sets(self):
        counter = ExactCounter()
        counter.update_sets([{1, 2}, {1, 3}, {1}])
        assert counter.estimate(1) == 3.0
        assert counter.estimate(2) == 1.0
        assert counter.stream_length == 5

    def test_counters_returns_copy(self):
        counter = ExactCounter.from_stream([1])
        view = counter.counters()
        view[1] = 99.0
        assert counter.estimate(1) == 1.0

    def test_empty(self):
        counter = ExactCounter()
        assert counter.counters() == {}
        assert counter.top(3) == []

    def test_heavy_hitters_helper(self):
        counter = ExactCounter.from_stream([1, 1, 1, 2])
        assert counter.heavy_hitters(2) == {1: 3.0}
