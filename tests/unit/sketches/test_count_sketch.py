"""Unit tests for the CountSketch."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.sketches import CountSketch, ExactCounter
from repro.streams import zipf_stream


class TestCountSketch:
    def test_dimensions_validated(self):
        with pytest.raises(ParameterError):
            CountSketch(0, 3)
        with pytest.raises(ParameterError):
            CountSketch(16, 0)

    def test_heavy_hitters_recovered_accurately(self):
        stream = zipf_stream(10_000, 500, exponent=1.5, rng=0)
        truth = ExactCounter.from_stream(stream)
        sketch = CountSketch.from_stream(1024, 5, stream)
        # The few heaviest elements should be estimated within a small
        # fraction of the stream length.
        for element, exact in truth.top(5):
            assert abs(sketch.estimate(element) - exact) <= 0.02 * len(stream)

    def test_roughly_unbiased_on_average(self):
        stream = zipf_stream(5_000, 100, rng=1)
        truth = ExactCounter.from_stream(stream)
        sketch = CountSketch.from_stream(512, 7, stream)
        errors = [sketch.estimate(element) - truth.estimate(element) for element in range(100)]
        assert abs(np.mean(errors)) <= 0.01 * len(stream)

    def test_deterministic_given_seed(self):
        stream = zipf_stream(300, 40, rng=2)
        first = CountSketch.from_stream(64, 3, stream, seed=5)
        second = CountSketch.from_stream(64, 3, stream, seed=5)
        assert (first.table() == second.table()).all()

    def test_signs_balance_table_sum(self):
        # The total signed mass should be much smaller than the stream length.
        stream = zipf_stream(5_000, 1_000, exponent=1.01, rng=3)
        sketch = CountSketch.from_stream(256, 3, stream)
        assert abs(sketch.table().sum()) < len(stream)

    def test_counters_view(self):
        sketch = CountSketch.from_stream(64, 3, ["a", "a", "b"])
        assert set(sketch.counters()) == {"a", "b"}

    def test_weighted_update(self):
        sketch = CountSketch(64, 5)
        sketch.update("x", weight=10.0)
        assert sketch.estimate("x") == pytest.approx(10.0)

    def test_bulk_update_all_identical_to_sequential(self):
        import numpy as np
        stream = np.random.default_rng(1).integers(0, 50, 2_000).tolist()
        sequential = CountSketch(37, 5, seed=3)
        for element in stream:
            sequential.update(element)
        bulk = CountSketch(37, 5, seed=3)
        bulk.update_all(stream)
        assert np.array_equal(sequential.table(), bulk.table())
        assert sequential.stream_length == bulk.stream_length
        assert sequential.counters() == bulk.counters()

    def test_update_all_empty_stream(self):
        sketch = CountSketch(8, 2)
        sketch.update_all([])
        assert sketch.stream_length == 0
