"""Unit tests for the FrequencySketch interface and SketchSummary."""

import pytest

from repro.sketches import MisraGriesSketch, SketchSummary


class TestSketchSummary:
    def test_estimate_defaults_to_zero(self):
        summary = SketchSummary(counters={"a": 2.0}, stream_length=5, capacity=4)
        assert summary.estimate("a") == 2.0
        assert summary.estimate("b") == 0.0

    def test_top(self):
        summary = SketchSummary(counters={"a": 2.0, "b": 5.0, "c": 1.0})
        assert summary.top(2) == [("b", 5.0), ("a", 2.0)]

    def test_total_and_len(self):
        summary = SketchSummary(counters={"a": 2.0, "b": 3.0})
        assert summary.total() == 5.0
        assert len(summary) == 2

    def test_keys_items(self):
        summary = SketchSummary(counters={"a": 1.0})
        assert summary.keys() == ["a"]
        assert summary.items() == [("a", 1.0)]


class TestFrequencySketchInterface:
    def test_summary_snapshot(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 1, 2])
        summary = sketch.summary()
        assert summary.stream_length == 3
        assert summary.capacity == 4
        assert summary.estimate(1) == 2.0

    def test_summary_is_immutable_snapshot(self):
        sketch = MisraGriesSketch.from_stream(4, [1])
        summary = sketch.summary()
        sketch.update(1)
        assert summary.estimate(1) == 1.0
        assert sketch.estimate(1) == 2.0

    def test_heavy_hitters_helper(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 1, 1, 2])
        assert sketch.heavy_hitters(2) == {1: 3.0}

    def test_iteration_yields_counter_items(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 2, 1])
        assert dict(iter(sketch))[1] == 2.0

    def test_update_all_returns_self(self):
        sketch = MisraGriesSketch(2)
        assert sketch.update_all([1, 2]) is sketch


def test_update_all_keeps_numpy_bools_out_of_batch_path():
    """np.bool_ hashes like 0/1 but has a different eviction rank; a stream
    containing one must not be coerced into the integer batch path."""
    import numpy as np
    from repro.sketches import MisraGriesSketch
    batched = MisraGriesSketch(3)
    batched.update_all([2, np.True_])
    sequential = MisraGriesSketch(3)
    for element in [2, np.True_]:
        sequential.update(element)
    assert batched.raw_counters() == sequential.raw_counters()
