"""Equivalence proofs for the optimized Misra-Gries engine.

The production engine (lazy offset + value buckets + zero-key heap + NumPy
batch path) must produce *byte-identical* observable state — ``raw_counters``,
``stream_length`` and ``decrement_rounds`` — to the frozen reference
implementation in :mod:`repro.sketches._reference`, which is a direct O(k)
transcription of Algorithm 1.  These property tests drive both engines with
randomized streams (negative ints, strings, mixed universes) and adversarial
all-distinct streams, plus the batch path against the sequential path.
"""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ContinualHeavyHitters
from repro.sketches import MisraGriesSketch, SpaceSavingSketch
from repro.sketches._ordering import DummyKey, eviction_order
from repro.sketches._reference import ReferenceMisraGries
from repro.sketches.serialization import sketch_from_dict, sketch_to_dict

KS = st.integers(min_value=1, max_value=8)
INTS = st.integers(min_value=-25, max_value=25)
STRINGS = st.text(alphabet="abcdef", min_size=0, max_size=3)
MIXED = st.one_of(INTS, STRINGS)


def assert_same_state(reference: ReferenceMisraGries, sketch: MisraGriesSketch) -> None:
    assert sketch.raw_counters() == reference.raw_counters()
    assert sketch.stream_length == reference.stream_length
    assert sketch.decrement_rounds == reference.decrement_rounds
    assert sketch.stored_keys() == reference.stored_keys()


class TestEngineMatchesReference:
    @settings(deadline=None)
    @given(k=KS, stream=st.lists(INTS, max_size=150))
    def test_integer_streams(self, k, stream):
        assert_same_state(ReferenceMisraGries.from_stream(k, stream),
                          MisraGriesSketch.from_stream(k, stream))

    @settings(deadline=None)
    @given(k=KS, stream=st.lists(STRINGS, max_size=150))
    def test_string_streams(self, k, stream):
        assert_same_state(ReferenceMisraGries.from_stream(k, stream),
                          MisraGriesSketch.from_stream(k, stream))

    @settings(deadline=None)
    @given(k=KS, stream=st.lists(MIXED, max_size=150))
    def test_mixed_type_streams(self, k, stream):
        assert_same_state(ReferenceMisraGries.from_stream(k, stream),
                          MisraGriesSketch.from_stream(k, stream))

    @pytest.mark.parametrize("k", [1, 7, 32, 257])
    def test_adversarial_all_distinct(self, k):
        # Every element is new: after the first k arrivals the stream
        # alternates one decrement round with k evictions — the worst case
        # for the seed engine's O(k) branches.
        stream = list(range(4 * k + 11))
        reference = ReferenceMisraGries.from_stream(k, stream)
        sketch = MisraGriesSketch.from_stream(k, stream)
        assert_same_state(reference, sketch)
        assert reference.decrement_rounds > 0

    def test_zero_one_oscillation_exercises_stale_heap_entries(self):
        # Keys repeatedly leave and re-enter the zero set, creating duplicate
        # and stale heap entries that lazy deletion must skip over.
        stream = []
        for round_index in range(60):
            stream.extend([0, 1, 2])        # refill counters
            stream.append(100 + round_index)  # decrement round -> all zero
            stream.append(200 + round_index)  # eviction of the smallest zero
        assert_same_state(ReferenceMisraGries.from_stream(3, stream),
                          MisraGriesSketch.from_stream(3, stream))


class TestBatchMatchesSequential:
    @settings(deadline=None)
    @given(k=KS, stream=st.lists(INTS, min_size=1, max_size=200))
    def test_batch_bit_identical(self, k, stream):
        sequential = MisraGriesSketch(k)
        for element in stream:
            sequential.update(element)
        batched = MisraGriesSketch(k)
        batched.update_batch(np.asarray(stream, dtype=np.int64))
        assert batched.raw_counters() == sequential.raw_counters()
        assert batched.stream_length == sequential.stream_length
        assert batched.decrement_rounds == sequential.decrement_rounds

    def test_update_all_dispatches_lists_of_ints(self):
        stream = [5, -3, 5, 7, 5, -3, 9, 11, 13] * 30
        via_list = MisraGriesSketch(4).update_all(stream)
        via_loop = MisraGriesSketch(4)
        for element in stream:
            via_loop.update(element)
        assert via_list.raw_counters() == via_loop.raw_counters()
        assert via_list.decrement_rounds == via_loop.decrement_rounds

    def test_update_all_falls_back_on_mixed_streams(self):
        stream = [1, "a", 2, "b", 1]
        sketch = MisraGriesSketch(3).update_all(stream)
        reference = ReferenceMisraGries.from_stream(3, stream)
        assert sketch.raw_counters() == reference.raw_counters()

    def test_update_all_falls_back_on_bool_payloads(self):
        # NumPy coerces [2, True] to an int array, but True is not the int 1
        # for eviction ordering; such streams must take the sequential path.
        from repro._batching import as_int_array

        assert as_int_array([2, True, 2, False, 3]) is None
        stream = [2, True, 3]  # both counters stay stored: True survives
        sketch = MisraGriesSketch(2).update_all(stream)
        reference = ReferenceMisraGries.from_stream(2, stream)
        assert sketch.raw_counters() == reference.raw_counters()
        assert any(key is True for key in sketch.stored_keys())

    def test_batch_rejects_non_integer_arrays(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            MisraGriesSketch(2).update_batch(np.asarray([1.5, 2.5]))
        with pytest.raises(ParameterError):
            MisraGriesSketch(2).update_batch(np.zeros((2, 2), dtype=np.int64))

    def test_batch_empty_input_is_a_noop(self):
        sketch = MisraGriesSketch(2)
        sketch.update_batch([])  # float64-inferred dtype must not be rejected
        sketch.update_batch(np.empty(0, dtype=np.int64))
        assert sketch.stream_length == 0
        assert sketch.decrement_rounds == 0

    def test_batch_spans_multiple_chunks(self):
        rng = np.random.default_rng(7)
        stream = rng.integers(0, 40, size=20_000)
        batched = MisraGriesSketch(16).update_batch(stream)
        sequential = MisraGriesSketch(16)
        for element in stream.tolist():
            sequential.update(element)
        assert batched.raw_counters() == sequential.raw_counters()
        assert batched.decrement_rounds == sequential.decrement_rounds


class TestEvictionOrderFix:
    def test_negative_numbers_order_numerically(self):
        # -5 < -3, so -5 must be evicted first; the old fixed-width string
        # keys compared "-0...3" < "-0...5" and evicted -3 instead.
        assert eviction_order(-5) < eviction_order(-3)
        sketch = MisraGriesSketch(2)
        sketch.update_all([-5, -3, 7])   # decrement round: both counters hit 0
        sketch.update(8)                 # evicts the smallest zero key
        assert -5 not in sketch.stored_keys()
        assert -3 in sketch.stored_keys()

    def test_numbers_sort_before_strings_and_dummies_last(self):
        assert eviction_order(3) < eviction_order("a")
        assert eviction_order("a") < eviction_order(DummyKey(1))
        assert eviction_order(DummyKey(1)) < eviction_order(DummyKey(2))

    def test_mixed_type_order_never_raises(self):
        keys = [-2, 3.5, "b", DummyKey(2), 0, "a", DummyKey(1)]
        ordered = sorted(keys, key=eviction_order)
        assert ordered == [-2, 0, 3.5, "a", "b", DummyKey(1), DummyKey(2)]

    def test_ints_beyond_float_range(self):
        huge, huger = 10 ** 400, 10 ** 400 + 1
        assert eviction_order(huge) < eviction_order(huger)
        assert eviction_order(-huge) < eviction_order(-3)
        assert eviction_order(1e308) < eviction_order(huge)
        ordered = sorted([huger, 5, -huge, huge], key=eviction_order)
        assert ordered == [-huge, 5, huge, huger]
        sketch = SpaceSavingSketch(2)
        sketch.update_all([huge, huger, 5])  # seed repr-key code survived this
        assert sketch.stream_length == 3
        mg = MisraGriesSketch.from_stream(2, [huge, huger, 5, 7])
        assert mg.stream_length == 4


class TestSerializationContinuesUpdating:
    def test_roundtrip_then_update_matches_straight_through(self):
        prefix = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        suffix = [8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6]
        restored = sketch_from_dict(sketch_to_dict(
            MisraGriesSketch.from_stream(3, prefix)))
        restored.update_all(suffix)
        straight = MisraGriesSketch.from_stream(3, prefix + suffix)
        assert restored.raw_counters() == straight.raw_counters()
        assert restored.stream_length == straight.stream_length


class TestContinualBatchPath:
    def test_batched_process_stream_matches_per_element(self):
        stream = (np.arange(700) % 37).tolist()
        batched = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6,
                                        block_size=100, rng=0)
        batched.process_stream(np.asarray(stream, dtype=np.int64))
        sequential = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6,
                                           block_size=100, rng=0)
        for element in stream:
            sequential.process(element)
        assert batched.closed_blocks == sequential.closed_blocks
        assert batched.elements_processed == sequential.elements_processed
        assert [h.as_dict() for h in batched.releases] == \
               [h.as_dict() for h in sequential.releases]


class ReferenceSpaceSaving:
    """O(k) min-scan SpaceSaving used as the specification for the heap."""

    def __init__(self, k: int) -> None:
        self._k = k
        self._counters = {}

    def update(self, element) -> None:
        if element in self._counters:
            self._counters[element] += 1.0
            return
        if len(self._counters) < self._k:
            self._counters[element] = 1.0
            return
        victim = min(self._counters,
                     key=lambda key: (self._counters[key], eviction_order(key)))
        minimum = self._counters.pop(victim)
        self._counters[element] = minimum + 1.0


class TestSpaceSavingHeap:
    @settings(deadline=None)
    @given(k=KS, stream=st.lists(INTS, max_size=200))
    def test_matches_min_scan_reference(self, k, stream):
        reference = ReferenceSpaceSaving(k)
        sketch = SpaceSavingSketch(k)
        for element in stream:
            reference.update(element)
            sketch.update(element)
        assert sketch.counters() == reference._counters
        assert sketch.stream_length == len(stream)

    def test_heap_compaction_keeps_state_consistent(self):
        # Enough churn to trigger several compactions at 4k + 64 entries.
        k = 4
        stream = [index % 11 for index in range(5_000)]
        reference = ReferenceSpaceSaving(k)
        sketch = SpaceSavingSketch(k)
        for element in stream:
            reference.update(element)
            sketch.update(element)
        assert sketch.counters() == reference._counters
        assert len(sketch._heap) <= 4 * k + 64 + 1


class TestLargeIntTieBreak:
    def test_ints_beyond_float_precision_evict_identically(self):
        """Distinct ints >= 2**53 collapse to equal floats; the exact-key
        tie-break must still match the reference engine's min() scan."""
        from repro.sketches import MisraGriesSketch
        from repro.sketches._reference import ReferenceMisraGries
        stream = [9, 2 ** 53 + 1, 7, 2 ** 53 + 1, 2 ** 53, 9, 7]
        optimized = MisraGriesSketch.from_stream(2, stream)
        reference = ReferenceMisraGries.from_stream(2, stream)
        assert optimized.raw_counters() == reference.raw_counters()

    def test_eviction_order_distinguishes_large_ints(self):
        from repro.sketches._ordering import eviction_order
        assert eviction_order(2 ** 53) < eviction_order(2 ** 53 + 1)

    def test_nan_keys_evict_identically(self):
        """A NaN key must not break the total eviction order."""
        import math
        from repro.sketches import MisraGriesSketch
        from repro.sketches._reference import ReferenceMisraGries
        stream = [7.0, math.nan, 3.0, 2.0, 9.0, 1.0, 5.0, 3.0, 7.0, 2.0] * 6
        optimized = MisraGriesSketch.from_stream(4, stream)
        reference = ReferenceMisraGries.from_stream(4, stream)
        assert list(optimized.raw_counters()) == list(reference.raw_counters())
