"""Unit tests for the CountMin sketch."""

import pytest

from repro.exceptions import ParameterError
from repro.sketches import CountMinSketch, ExactCounter
from repro.streams import zipf_stream


class TestCountMin:
    def test_dimensions_validated(self):
        with pytest.raises(ParameterError):
            CountMinSketch(0, 3)
        with pytest.raises(ParameterError):
            CountMinSketch(10, 0)
        with pytest.raises(ParameterError):
            CountMinSketch(10, 3, seed=-1)

    def test_never_underestimates(self):
        stream = zipf_stream(2_000, 100, rng=0)
        truth = ExactCounter.from_stream(stream)
        sketch = CountMinSketch.from_stream(128, 4, stream)
        for element in range(100):
            assert sketch.estimate(element) >= truth.estimate(element)

    def test_error_within_expected_scale(self):
        stream = zipf_stream(5_000, 200, rng=1)
        truth = ExactCounter.from_stream(stream)
        sketch = CountMinSketch.from_stream(512, 5, stream)
        bound = 2.72 * len(stream) / 512
        exceed = sum(1 for element in range(200)
                     if sketch.estimate(element) - truth.estimate(element) > bound)
        assert exceed <= 10  # the bound holds in expectation per query

    def test_deterministic_given_seed(self):
        stream = zipf_stream(500, 50, rng=2)
        first = CountMinSketch.from_stream(64, 3, stream, seed=9)
        second = CountMinSketch.from_stream(64, 3, stream, seed=9)
        assert (first.table() == second.table()).all()

    def test_different_seeds_differ(self):
        stream = zipf_stream(500, 50, rng=3)
        first = CountMinSketch.from_stream(64, 3, stream, seed=1)
        second = CountMinSketch.from_stream(64, 3, stream, seed=2)
        assert not (first.table() == second.table()).all()

    def test_from_error_bounds_sizing(self):
        sketch = CountMinSketch.from_error_bounds(epsilon_rel=0.01, failure_prob=0.01)
        assert sketch.width >= 272
        assert sketch.depth >= 4

    def test_from_error_bounds_validation(self):
        with pytest.raises(ParameterError):
            CountMinSketch.from_error_bounds(0.0, 0.1)
        with pytest.raises(ParameterError):
            CountMinSketch.from_error_bounds(0.1, 1.5)

    def test_counters_view_covers_seen_keys(self):
        sketch = CountMinSketch.from_stream(32, 3, ["a", "b", "a"])
        counters = sketch.counters()
        assert set(counters) == {"a", "b"}
        assert counters["a"] >= 2

    def test_weighted_updates(self):
        sketch = CountMinSketch(32, 3)
        sketch.update("x", weight=5.0)
        assert sketch.estimate("x") >= 5.0

    def test_string_and_int_keys_coexist(self):
        sketch = CountMinSketch.from_stream(64, 3, ["a", 1, "a", 1, 2])
        assert sketch.estimate("a") >= 2
        assert sketch.estimate(1) >= 2

    def test_bulk_update_all_identical_to_sequential(self):
        import numpy as np
        stream = np.random.default_rng(0).integers(0, 50, 2_000).tolist()
        sequential = CountMinSketch(37, 4, seed=3)
        for element in stream:
            sequential.update(element)
        bulk = CountMinSketch(37, 4, seed=3)
        bulk.update_all(stream)
        assert np.array_equal(sequential.table(), bulk.table())
        assert sequential.stream_length == bulk.stream_length
        assert sequential.counters() == bulk.counters()

    def test_bulk_update_all_mixed_key_types(self):
        import numpy as np
        stream = ["a", 1, "a", (2, 3), 1, "b"] * 10
        sequential = CountMinSketch(29, 3, seed=1)
        for element in stream:
            sequential.update(element)
        bulk = CountMinSketch(29, 3, seed=1)
        bulk.update_all(stream)
        assert np.array_equal(sequential.table(), bulk.table())

    def test_update_all_empty_stream(self):
        sketch = CountMinSketch(8, 2)
        sketch.update_all([])
        assert sketch.stream_length == 0

    def test_estimate_of_unseen_key_does_not_grow_cache(self):
        sketch = CountMinSketch(8, 2)
        sketch.update("a")
        cached = len(sketch._column_cache)
        sketch.estimate("never-updated")
        assert len(sketch._column_cache) == cached
