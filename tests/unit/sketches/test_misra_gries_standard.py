"""Unit tests for the standard (textbook) Misra-Gries sketch."""

import pytest

from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, MisraGriesSketch, StandardMisraGriesSketch
from repro.streams import zipf_stream


class TestStandardMisraGries:
    def test_requires_positive_k(self):
        with pytest.raises(ParameterError):
            StandardMisraGriesSketch(0)

    def test_stores_at_most_k_keys(self):
        sketch = StandardMisraGriesSketch.from_stream(4, zipf_stream(500, 80, rng=0))
        assert len(sketch.counters()) <= 4

    def test_no_zero_counters_stored(self):
        sketch = StandardMisraGriesSketch.from_stream(3, [1, 2, 3, 4, 5, 6])
        assert all(value > 0 for value in sketch.counters().values())

    def test_fact7_error_bound(self):
        stream = zipf_stream(3_000, 100, exponent=1.2, rng=1)
        truth = ExactCounter.from_stream(stream)
        for k in (5, 20):
            sketch = StandardMisraGriesSketch.from_stream(k, stream)
            bound = len(stream) / (k + 1)
            for element in range(100):
                estimate = sketch.estimate(element)
                exact = truth.estimate(element)
                assert exact - bound <= estimate <= exact

    def test_estimates_match_paper_variant(self):
        # The paper relies on the two variants producing identical estimates.
        stream = zipf_stream(2_000, 60, exponent=1.1, rng=2)
        for k in (3, 8, 32):
            standard = StandardMisraGriesSketch.from_stream(k, stream)
            variant = MisraGriesSketch.from_stream(k, stream)
            for element in range(60):
                assert standard.estimate(element) == variant.estimate(element)

    def test_decrement_rounds_tracked(self):
        sketch = StandardMisraGriesSketch.from_stream(2, [1, 2, 3])
        assert sketch.decrement_rounds == 1

    def test_key_sets_can_differ_from_paper_variant(self):
        # k distinct elements each once: the standard sketch stores them all
        # with count 1, while deleting one element changes its stored set —
        # the scenario motivating the Section 5.1 threshold.
        stream = [1, 2, 3, 4]
        sketch = StandardMisraGriesSketch.from_stream(4, stream)
        assert len(sketch.counters()) == 4

    def test_error_bound_helper(self):
        sketch = StandardMisraGriesSketch.from_stream(9, range(100))
        assert sketch.error_bound() == pytest.approx(10.0)

    def test_repr(self):
        assert "StandardMisraGries" in repr(StandardMisraGriesSketch(3))
