"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    CalibrationError,
    ParameterError,
    PrivacyParameterError,
    ReproError,
    SketchStateError,
    StreamFormatError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (ParameterError, PrivacyParameterError, SketchStateError,
                     StreamFormatError, CalibrationError):
        assert issubclass(exc_type, ReproError)


def test_parameter_error_is_value_error():
    assert issubclass(ParameterError, ValueError)
    assert issubclass(PrivacyParameterError, ParameterError)


def test_sketch_state_error_is_runtime_error():
    assert issubclass(SketchStateError, RuntimeError)


def test_stream_format_error_is_value_error():
    assert issubclass(StreamFormatError, ValueError)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise PrivacyParameterError("bad epsilon")
