"""The pre-registry public import surface must keep working unchanged."""

import importlib

import pytest

#: Every name the seed's ``repro/__init__.py`` exported, with its home module.
SEED_EXPORTS = {
    "CalibrationError": "repro.exceptions",
    "ContinualHeavyHitters": "repro.core.continual",
    "ExactCounter": "repro.sketches.exact",
    "GaussianSparseHistogram": "repro.core.gshm",
    "MergeStrategy": "repro.core.merging",
    "MisraGriesSketch": "repro.sketches.misra_gries",
    "ParameterError": "repro.exceptions",
    "PrivacyAwareMisraGries": "repro.core.pamg",
    "PrivacyParameterError": "repro.exceptions",
    "PrivateHistogram": "repro.core.results",
    "PrivateMergedRelease": "repro.core.merging",
    "PrivateMisraGries": "repro.core.private_misra_gries",
    "PureDPMisraGries": "repro.core.pure_dp",
    "ReleaseMetadata": "repro.core.results",
    "ReproError": "repro.exceptions",
    "SensitivityReducedMG": "repro.core.sensitivity_reduction",
    "SketchStateError": "repro.exceptions",
    "StandardMisraGriesSketch": "repro.sketches.misra_gries_standard",
    "StreamFormatError": "repro.exceptions",
    "UserLevelRelease": "repro.core.user_level",
    "merge_sketches": "repro.core.merging",
    "private_heavy_hitters": "repro.core.heavy_hitters",
    "reduce_sensitivity": "repro.core.sensitivity_reduction",
    "release_user_level_flattened": "repro.core.user_level",
    "release_user_level_pamg": "repro.core.user_level",
    "true_heavy_hitters": "repro.core.heavy_hitters",
}


@pytest.mark.parametrize("name", sorted(SEED_EXPORTS))
def test_seed_export_still_importable(name):
    repro = importlib.import_module("repro")
    assert name in repro.__all__
    exported = getattr(repro, name)
    home = importlib.import_module(SEED_EXPORTS[name])
    assert exported is getattr(home, name)


def test_version_present():
    import repro

    assert isinstance(repro.__version__, str)


def test_new_api_layer_exported():
    import repro

    assert repro.Pipeline is importlib.import_module("repro.api").Pipeline
    assert callable(repro.list_mechanisms)
    assert callable(repro.list_sketches)
