"""Unit tests for the random stream generators."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.sketches import ExactCounter
from repro.streams import constant_stream, shuffled_exact_frequencies, uniform_stream, zipf_stream
from repro.streams.generators import planted_heavy_hitters_stream


class TestZipfStream:
    def test_length_and_range(self):
        stream = zipf_stream(1_000, 50, rng=0)
        assert len(stream) == 1_000
        assert all(0 <= x < 50 for x in stream)

    def test_reproducible(self):
        assert zipf_stream(200, 30, rng=5) == zipf_stream(200, 30, rng=5)

    def test_skew_orders_frequencies(self):
        stream = zipf_stream(50_000, 100, exponent=1.5, rng=1)
        truth = ExactCounter.from_stream(stream)
        assert truth.estimate(0) > truth.estimate(10) > truth.estimate(90)

    def test_higher_exponent_more_skewed(self):
        mild = ExactCounter.from_stream(zipf_stream(20_000, 100, exponent=1.01, rng=2))
        steep = ExactCounter.from_stream(zipf_stream(20_000, 100, exponent=2.0, rng=2))
        assert steep.estimate(0) > mild.estimate(0)

    def test_zero_length(self):
        assert zipf_stream(0, 10, rng=0) == []

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            zipf_stream(-1, 10)
        with pytest.raises(ParameterError):
            zipf_stream(10, 0)
        with pytest.raises(ParameterError):
            zipf_stream(10, 10, exponent=0.0)


class TestUniformStream:
    def test_length_and_range(self):
        stream = uniform_stream(500, 20, rng=0)
        assert len(stream) == 500
        assert set(stream) <= set(range(20))

    def test_roughly_uniform(self):
        stream = uniform_stream(40_000, 10, rng=1)
        truth = ExactCounter.from_stream(stream)
        counts = [truth.estimate(i) for i in range(10)]
        assert max(counts) - min(counts) < 0.15 * 4_000 + 400

    def test_zero_length(self):
        assert uniform_stream(0, 5) == []


class TestConstantStream:
    def test_contents(self):
        assert constant_stream(4, element=9) == [9, 9, 9, 9]

    def test_zero(self):
        assert constant_stream(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            constant_stream(-1)


class TestShuffledExactFrequencies:
    def test_realizes_exact_counts(self):
        frequencies = {1: 5, 2: 3, 7: 0}
        stream = shuffled_exact_frequencies(frequencies, rng=0)
        truth = ExactCounter.from_stream(stream)
        assert truth.estimate(1) == 5
        assert truth.estimate(2) == 3
        assert truth.estimate(7) == 0
        assert len(stream) == 8

    def test_shuffle_reproducible(self):
        frequencies = {1: 3, 2: 3}
        assert (shuffled_exact_frequencies(frequencies, rng=1)
                == shuffled_exact_frequencies(frequencies, rng=1))


class TestPlantedHeavyHitters:
    def test_planted_elements_are_heavy(self):
        stream = planted_heavy_hitters_stream(50_000, 1_000, num_heavy=5,
                                              heavy_fraction=0.5, rng=0)
        truth = ExactCounter.from_stream(stream)
        heavy_counts = [truth.estimate(i) for i in range(5)]
        light_counts = [truth.estimate(i) for i in range(5, 100)]
        assert min(heavy_counts) > 10 * max(light_counts)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            planted_heavy_hitters_stream(100, 10, num_heavy=10)
        with pytest.raises(ValueError):
            planted_heavy_hitters_stream(100, 10, num_heavy=2, heavy_fraction=1.5)
