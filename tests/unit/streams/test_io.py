"""Unit tests for stream persistence."""

import pytest

from repro.exceptions import StreamFormatError
from repro.streams import read_stream, write_stream
from repro.streams.io import iter_stream


class TestElementStreams:
    def test_roundtrip_ints(self, tmp_path):
        stream = [1, 5, 2, 2, 9]
        path = tmp_path / "stream.txt"
        assert write_stream(path, stream) == 5
        assert read_stream(path) == stream

    def test_roundtrip_strings(self, tmp_path):
        stream = ["alpha", "beta", "alpha"]
        path = tmp_path / "stream.txt"
        write_stream(path, stream)
        assert read_stream(path) == stream

    def test_mixed_parse(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_stream(path, [1, "two", 3])
        assert read_stream(path) == [1, "two", 3]

    def test_parse_int_disabled(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_stream(path, [1, 2])
        assert read_stream(path, parse_int=False) == ["1", "2"]

    def test_iter_stream_lazy(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_stream(path, range(100))
        assert list(iter_stream(path)) == list(range(100))

    def test_rejects_newline_in_element(self, tmp_path):
        with pytest.raises(StreamFormatError):
            write_stream(tmp_path / "bad.txt", ["a\nb"])

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "stream.txt"
        write_stream(path, [1])
        assert read_stream(path) == [1]


class TestUserLevelStreams:
    def test_roundtrip(self, tmp_path):
        stream = [frozenset({1, 2}), frozenset({3})]
        path = tmp_path / "users.txt"
        write_stream(path, stream, user_level=True)
        loaded = read_stream(path, user_level=True)
        assert loaded == stream

    def test_rejects_commas_in_elements(self, tmp_path):
        with pytest.raises(StreamFormatError):
            write_stream(tmp_path / "bad.txt", [frozenset({"a,b"})], user_level=True)
