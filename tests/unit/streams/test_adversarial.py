"""Unit tests for the adversarial / worst-case stream constructions."""

import pytest

from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import (
    alternating_stream,
    lemma25_streams,
    mg_worst_case_stream,
    tight_error_stream,
)
from repro.streams.user_streams import flatten_user_stream


class TestMgWorstCase:
    def test_contents(self):
        stream = mg_worst_case_stream(k=3, repetitions=2)
        assert len(stream) == 8
        truth = ExactCounter.from_stream(stream)
        assert all(truth.estimate(i) == 2 for i in range(4))

    def test_forces_maximum_error(self):
        k, repetitions = 4, 50
        stream = mg_worst_case_stream(k, repetitions)
        sketch = MisraGriesSketch.from_stream(k, stream)
        # Some element with true frequency `repetitions` is estimated at 0,
        # which exactly matches the n/(k+1) bound.
        worst = max(repetitions - sketch.estimate(i) for i in range(k + 1))
        assert worst == pytest.approx(len(stream) / (k + 1))

    def test_zero_repetitions(self):
        assert mg_worst_case_stream(3, 0) == []


class TestTightErrorStream:
    def test_length_rounded_down(self):
        stream = tight_error_stream(k=3, n=10)
        assert len(stream) == 8  # 2 repetitions of 4 elements

    def test_small_n_gives_empty(self):
        assert tight_error_stream(k=10, n=5) == []


class TestAlternatingStream:
    def test_heavy_element_count(self):
        stream = alternating_stream(k=3, rounds=5)
        truth = ExactCounter.from_stream(stream)
        assert truth.estimate(0) == 5
        assert len(stream) == 5 * 4

    def test_heavy_element_suppressed_in_sketch(self):
        k, rounds = 4, 30
        stream = alternating_stream(k, rounds)
        sketch = MisraGriesSketch.from_stream(k, stream)
        # The fresh elements keep displacing the heavy element's counter.
        assert sketch.estimate(0) <= rounds
        assert sketch.estimate(0) <= len(stream) / (k + 1) + 1


class TestLemma25Streams:
    def test_neighbouring_by_one_user(self):
        stream, neighbour = lemma25_streams(k=6, m=3, tail_length=5)
        assert len(stream) == len(neighbour) + 1
        # Every user set respects the contribution bound.
        assert all(len(user) <= 3 for user in stream)

    def test_counter_gap_is_m(self):
        # The construction makes the MG counter of the target element differ
        # by exactly m between the flattened neighbouring streams (Lemma 25).
        for k, m in ((5, 2), (8, 4), (12, 12)):
            stream, neighbour = lemma25_streams(k=k, m=m, tail_length=6)
            sketch = MisraGriesSketch.from_stream(k, flatten_user_stream(stream))
            sketch_neighbour = MisraGriesSketch.from_stream(k, flatten_user_stream(neighbour))
            gap = sketch.estimate("x") - sketch_neighbour.estimate("x")
            assert gap == pytest.approx(m)

    def test_requires_m_at_most_k(self):
        with pytest.raises(ParameterError):
            lemma25_streams(k=3, m=4)

    def test_padding_elements_distinct_per_user(self):
        stream, _ = lemma25_streams(k=6, m=3)
        for user in stream:
            assert len(user) == len(set(user))
