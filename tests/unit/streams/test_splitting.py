"""Unit tests for stream splitting."""

import pytest

from repro.exceptions import ParameterError
from repro.streams import split_contiguous, split_round_robin


class TestSplitContiguous:
    def test_partition_covers_stream(self):
        stream = list(range(10))
        parts = split_contiguous(stream, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert [x for part in parts for x in part] == stream

    def test_more_parts_than_elements(self):
        parts = split_contiguous([1, 2], 4)
        assert parts == [[1], [2], [], []]

    def test_single_part(self):
        assert split_contiguous([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_parts(self):
        with pytest.raises(ParameterError):
            split_contiguous([1], 0)


class TestSplitRoundRobin:
    def test_dealing_order(self):
        parts = split_round_robin(list(range(7)), 3)
        assert parts == [[0, 3, 6], [1, 4], [2, 5]]

    def test_partition_covers_stream(self):
        stream = list(range(20))
        parts = split_round_robin(stream, 4)
        assert sorted(x for part in parts for x in part) == stream

    def test_empty_stream(self):
        assert split_round_robin([], 3) == [[], [], []]


def test_split_contiguous_keeps_ndarray_views():
    import numpy as np
    stream = np.arange(10, dtype=np.int64)
    parts = split_contiguous(stream, 3)
    assert [len(part) for part in parts] == [4, 3, 3]
    assert all(isinstance(part, np.ndarray) for part in parts)
    assert np.concatenate(parts).tolist() == stream.tolist()
    assert parts[0].base is stream  # views, not copies
