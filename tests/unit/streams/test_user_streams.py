"""Unit tests for user-level stream generation and validation."""

import pytest

from repro.exceptions import StreamFormatError
from repro.streams import (
    distinct_user_stream,
    duplicate_user_stream,
    flatten_user_stream,
    user_stream_total_length,
)
from repro.streams.user_streams import validate_user_stream


class TestDistinctUserStream:
    def test_respects_contribution_bound(self):
        stream = distinct_user_stream(200, 100, max_contribution=5, rng=0)
        assert len(stream) == 200
        assert all(1 <= len(user) <= 5 for user in stream)

    def test_elements_distinct_within_user(self):
        stream = distinct_user_stream(100, 50, max_contribution=8, rng=1)
        for user in stream:
            assert len(user) == len(set(user))

    def test_elements_in_universe(self):
        stream = distinct_user_stream(100, 20, max_contribution=3, rng=2)
        assert all(all(0 <= x < 20 for x in user) for user in stream)

    def test_reproducible(self):
        assert (distinct_user_stream(50, 30, 4, rng=3)
                == distinct_user_stream(50, 30, 4, rng=3))

    def test_contribution_larger_than_universe_rejected(self):
        with pytest.raises(StreamFormatError):
            distinct_user_stream(10, 3, max_contribution=5)

    def test_popular_elements_appear_more(self):
        stream = distinct_user_stream(3_000, 200, max_contribution=5, exponent=1.5, rng=4)
        count_popular = sum(1 for user in stream if 0 in user)
        count_rare = sum(1 for user in stream if 150 in user)
        assert count_popular > count_rare


class TestDuplicateUserStream:
    def test_tuples_and_bound(self):
        stream = duplicate_user_stream(100, 50, max_contribution=4, rng=0)
        assert all(isinstance(user, tuple) and 1 <= len(user) <= 4 for user in stream)

    def test_duplicates_possible(self):
        stream = duplicate_user_stream(2_000, 3, max_contribution=4, rng=1)
        assert any(len(set(user)) < len(user) for user in stream)


class TestFlattening:
    def test_flatten_preserves_counts(self):
        stream = [frozenset({1, 2}), frozenset({2, 3})]
        flat = flatten_user_stream(stream)
        assert sorted(flat) == [1, 2, 2, 3]

    def test_flatten_sorts_within_user(self):
        flat = flatten_user_stream([frozenset({3, 1, 2})])
        assert flat == sorted(flat, key=repr)

    def test_total_length(self):
        stream = [frozenset({1, 2}), frozenset({5})]
        assert user_stream_total_length(stream) == 3


class TestValidation:
    def test_valid_stream_passes(self):
        validate_user_stream([frozenset({1, 2}), frozenset({3})], max_contribution=2)

    def test_oversized_user_rejected(self):
        with pytest.raises(StreamFormatError):
            validate_user_stream([frozenset({1, 2, 3})], max_contribution=2)

    def test_duplicates_rejected_when_distinct_required(self):
        with pytest.raises(StreamFormatError):
            validate_user_stream([(1, 1)], max_contribution=3, require_distinct=True)

    def test_duplicates_allowed_when_not_required(self):
        validate_user_stream([(1, 1)], max_contribution=3, require_distinct=False)
