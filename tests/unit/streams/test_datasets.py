"""Unit tests for the named synthetic datasets."""

import pytest

from repro.exceptions import ParameterError
from repro.streams import list_datasets, load_dataset


class TestDatasetRegistry:
    def test_list_datasets(self):
        names = list_datasets()
        assert "network_flows" in names
        assert "user_purchases" in names
        assert names == sorted(names)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ParameterError, match="unknown dataset"):
            load_dataset("does_not_exist")


class TestElementDatasets:
    @pytest.mark.parametrize("name", ["network_flows", "search_queries",
                                      "flat_background", "planted_heavy_hitters"])
    def test_shape(self, name):
        dataset = load_dataset(name, n=2_000, rng=0)
        assert dataset.length == 2_000
        assert not dataset.user_level
        assert all(0 <= x < dataset.universe_size for x in dataset.stream)

    def test_reproducible(self):
        first = load_dataset("network_flows", n=1_000, rng=3)
        second = load_dataset("network_flows", n=1_000, rng=3)
        assert first.stream == second.stream

    def test_different_seeds_differ(self):
        first = load_dataset("network_flows", n=1_000, rng=1)
        second = load_dataset("network_flows", n=1_000, rng=2)
        assert first.stream != second.stream

    def test_planted_dataset_has_heavy_hitters(self):
        from repro.sketches import ExactCounter

        dataset = load_dataset("planted_heavy_hitters", n=20_000, rng=0)
        truth = ExactCounter.from_stream(dataset.stream)
        assert truth.estimate(0) > 0.01 * dataset.length


class TestUserLevelDataset:
    def test_user_purchases_shape(self):
        dataset = load_dataset("user_purchases", n=500, rng=0)
        assert dataset.user_level
        assert dataset.length == 500
        assert all(1 <= len(user) <= 8 for user in dataset.stream)
