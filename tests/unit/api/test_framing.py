"""Unit tests for the length-prefixed framing layer (:mod:`repro.api.framing`)."""

from __future__ import annotations

import io
import json
import struct

import numpy as np
import pytest

from repro.api.framing import (
    FRAMING_VERSION,
    MAGIC,
    MAX_FRAME_BYTES,
    FrameReader,
    FrameWriter,
    StreamingMerger,
    iter_frames,
    merge_frames,
    write_frames,
)
from repro.api.wire import encode_counters, encode_sketch
from repro.core.merging import MergeStrategy, PrivateMergedRelease
from repro.exceptions import FramingError, ParameterError
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import merge_many, merge_many_arrays
from repro.streams import zipf_stream


def _export(seed, k=16, n=2_000, universe=200):
    stream = zipf_stream(n, universe, exponent=1.2, rng=seed, as_array=True)
    return MisraGriesSketch.from_stream(k, stream)


def _framed_exports(count=4, k=16):
    buffer = io.BytesIO()
    sketches = [_export(seed, k=k) for seed in range(count)]
    with FrameWriter(buffer, k=k, frames=count) as writer:
        for sketch in sketches:
            writer.write_counters(sketch.counters(), k=k,
                                  stream_length=sketch.stream_length)
    return buffer.getvalue(), sketches


class TestWriterReader:
    def test_round_trip_preserves_counters_and_header(self):
        data, sketches = _framed_exports(count=3, k=16)
        reader = FrameReader(io.BytesIO(data))
        assert reader.header.framing == FRAMING_VERSION
        assert reader.header.frames == 3
        assert reader.header.k == 16
        payloads = list(reader)
        assert len(payloads) == 3
        for payload, sketch in zip(payloads, sketches):
            assert payload.counters() == sketch.counters()
            assert payload.stream_length == sketch.stream_length

    def test_write_sketch_round_trips_full_state(self):
        sketch = _export(9)
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=sketch.size) as writer:
            writer.write_sketch(sketch)
        (payload,) = list(FrameReader(io.BytesIO(buffer.getvalue())))
        assert payload.kind == "misra_gries_paper"
        assert json.loads(json.dumps(payload.meta))  # JSON-clean metadata

    def test_declared_count_is_enforced_on_write(self):
        buffer = io.BytesIO()
        writer = FrameWriter(buffer, frames=1)
        writer.write_counters({1: 2.0})
        with pytest.raises(FramingError, match="declared 1 frame"):
            writer.write_counters({2: 3.0})
        writer.close()

    def test_close_rejects_missing_frames(self):
        writer = FrameWriter(io.BytesIO(), frames=2)
        writer.write_counters({1: 2.0})
        with pytest.raises(FramingError, match="declared 2 frame"):
            writer.close()

    def test_non_v2_payload_rejected(self):
        writer = FrameWriter(io.BytesIO())
        with pytest.raises(FramingError, match="wire v2"):
            writer.write_payload({"format_version": 1, "counters": {}})

    def test_bad_magic_rejected(self):
        with pytest.raises(FramingError, match="bad magic"):
            FrameReader(io.BytesIO(b"NOPE\x01" + b"\x00" * 16))

    def test_unsupported_framing_version_rejected(self):
        with pytest.raises(FramingError, match="framing version"):
            FrameReader(io.BytesIO(MAGIC + bytes([FRAMING_VERSION + 1])))

    def test_first_frame_must_be_header(self):
        buffer = io.BytesIO()
        buffer.write(MAGIC + bytes([FRAMING_VERSION]))
        body = json.dumps({"format": 2, "kind": "counters", "key_encoding": "int",
                           "keys": [], "values": []}).encode()
        buffer.write(struct.pack(">I", len(body)) + body)
        with pytest.raises(FramingError, match="frame_header"):
            FrameReader(io.BytesIO(buffer.getvalue()))

    def test_truncated_frame_body_raises(self):
        data, _ = _framed_exports(count=2)
        with pytest.raises(FramingError, match="truncated"):
            list(FrameReader(io.BytesIO(data[:-7])))

    def test_truncated_length_prefix_raises(self):
        data, _ = _framed_exports(count=2)
        # Keep everything plus 2 stray bytes that cannot form a length prefix.
        with pytest.raises(FramingError, match="truncated length prefix"):
            list(FrameReader(io.BytesIO(data + b"\x00\x01")))

    def test_trailing_garbage_raises(self):
        data, _ = _framed_exports(count=2)
        with pytest.raises(FramingError):
            list(FrameReader(io.BytesIO(data + b"\xde\xad\xbe\xef" + b"junk")))

    def test_implausible_length_prefix_raises(self):
        data, _ = _framed_exports(count=2)
        garbage = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(FramingError, match="MAX_FRAME_BYTES"):
            list(FrameReader(io.BytesIO(data + garbage)))

    def test_missing_declared_frames_raises(self):
        buffer = io.BytesIO()
        writer = FrameWriter(buffer, frames=3)
        writer.write_counters({1: 2.0})
        # Bypass close() to simulate a producer dying mid-stream.
        with pytest.raises(FramingError, match="declared 3"):
            list(FrameReader(io.BytesIO(buffer.getvalue())))

    def test_frame_body_must_carry_a_known_tag(self):
        buffer = io.BytesIO()
        FrameWriter(buffer)
        body = b"[1, 2, 3]"  # JSON, but not an object: unknown tag byte
        buffer.write(struct.pack(">I", len(body)) + body)
        with pytest.raises(FramingError, match="frame tag"):
            list(FrameReader(io.BytesIO(buffer.getvalue())))

    def test_json_encoding_escape_hatch_round_trips(self):
        sketch = _export(5)
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=16, encoding="json") as writer:
            writer.write_counters(sketch.counters(), k=16,
                                  stream_length=sketch.stream_length)
        data = buffer.getvalue()
        assert b'"keys"' in data  # textual frames, no binary columns
        (payload,) = list(FrameReader(io.BytesIO(data)))
        assert payload.counters() == sketch.counters()

    def test_binary_and_json_frames_decode_identically(self):
        sketch = _export(6)
        decoded = []
        for encoding in ("binary", "json"):
            buffer = io.BytesIO()
            with FrameWriter(buffer, k=16, encoding=encoding) as writer:
                writer.write_counters(sketch.counters(), k=16,
                                      stream_length=sketch.stream_length)
            (payload,) = list(FrameReader(io.BytesIO(buffer.getvalue())))
            decoded.append(payload)
        binary, textual = decoded
        assert binary.counters() == textual.counters()
        assert binary.keys == textual.keys
        assert np.array_equal(binary.key_array, textual.key_array)
        assert binary.meta == textual.meta

    def test_truncated_binary_frame_raises(self):
        sketch = _export(7)
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=16) as writer:
            writer.write_counters(sketch.counters(), k=16)
        data = buffer.getvalue()
        assert data.count(bytes([1])) >= 1  # binary frames in use
        with pytest.raises(FramingError):
            list(FrameReader(io.BytesIO(data[:-5])))


class _OneFrameOnlyFile:
    """A binary reader that forbids buffering the stream.

    ``read()`` with no size (or a size larger than the biggest legal single
    request: one frame body) raises — so any consumer that passes this test
    provably decodes at most one frame at a time.
    """

    def __init__(self, data: bytes, max_request: int):
        self._inner = io.BytesIO(data)
        self._max_request = max_request
        self.largest_request = 0

    def read(self, size=None):
        assert size is not None, "read() without a size buffers the whole stream"
        assert size <= self._max_request, (
            f"read({size}) asks for more than one frame ({self._max_request})")
        self.largest_request = max(self.largest_request, size)
        return self._inner.read(size)


class TestStreamingMerger:
    def test_streaming_never_reads_more_than_one_frame(self):
        data, sketches = _framed_exports(count=6, k=16)
        # The biggest single legal request: the largest frame body.
        frame_sizes, offset = [], len(MAGIC) + 1
        while offset < len(data):
            (length,) = struct.unpack_from(">I", data, offset)
            frame_sizes.append(length)
            offset += 4 + length
        guard = _OneFrameOnlyFile(data, max_request=max(frame_sizes))
        merger = StreamingMerger(16).consume(FrameReader(guard))
        assert merger.frames == 6
        expected = merge_many([sketch.counters() for sketch in sketches], 16)
        assert merger.merged() == expected
        assert guard.largest_request <= max(frame_sizes)

    def test_columnar_accumulator_matches_buffered_arrays(self):
        data, sketches = _framed_exports(count=5, k=16)
        merger = merge_frames(io.BytesIO(data))
        keys_list = [np.fromiter(s.counters().keys(), dtype=np.int64)
                     for s in sketches]
        values_list = [np.fromiter(s.counters().values(), dtype=np.float64)
                       for s in sketches]
        assert merger.columnar
        assert merger.merged() == merge_many_arrays(keys_list, values_list, 16)
        assert merger.total_stream_length == sum(s.stream_length for s in sketches)

    def test_token_frames_drop_to_dict_mode_with_same_fold(self):
        counters = [{"a": 5.0, "b": 3.0}, {"b": 2.0, "c": 4.0}, {"a": 1.0}]
        merger = StreamingMerger(2)
        for item in counters:
            merger.add(encode_counters(item, k=2))
        assert not merger.columnar
        assert merger.merged() == merge_many(counters, 2)
        with pytest.raises(ParameterError, match="columnar"):
            merger.merged_arrays()

    def test_release_matches_buffered_release_arrays(self):
        data, sketches = _framed_exports(count=4, k=16)
        merger = merge_frames(io.BytesIO(data))
        mechanism = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=16)
        streamed = merger.release(mechanism, rng=7)
        keys_list = [np.fromiter(s.counters().keys(), dtype=np.int64)
                     for s in sketches]
        values_list = [np.fromiter(s.counters().values(), dtype=np.float64)
                       for s in sketches]
        buffered = mechanism.release_arrays(
            keys_list, values_list, rng=7,
            total_stream_length=sum(s.stream_length for s in sketches))
        assert streamed.counts == buffered.counts
        assert streamed.metadata.notes == buffered.metadata.notes

    def test_release_requires_trusted_merged_strategy(self):
        data, _ = _framed_exports(count=2, k=16)
        merger = merge_frames(io.BytesIO(data))
        mechanism = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=16,
                                         strategy=MergeStrategy.TRUSTED_SUM)
        with pytest.raises(ParameterError, match="trusted_merged"):
            merger.release(mechanism, rng=0)

    def test_release_requires_matching_k(self):
        data, _ = _framed_exports(count=2, k=16)
        merger = merge_frames(io.BytesIO(data))
        with pytest.raises(ParameterError, match="calibrated"):
            merger.release(PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=8), rng=0)

    def test_empty_merger_refuses_release(self):
        with pytest.raises(ParameterError, match="no frames"):
            StreamingMerger(4).release(
                PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=4))


class TestFileHelpers:
    def test_write_and_iter_frames_path_round_trip(self, tmp_path):
        target = tmp_path / "exports.frames"
        sketches = [_export(seed) for seed in (1, 2)]
        assert write_frames(target, sketches, k=16) == 2
        payloads = list(iter_frames(target))
        assert [payload.kind for payload in payloads] == ["misra_gries_paper"] * 2

    def test_merge_frames_uses_header_k(self, tmp_path):
        target = tmp_path / "exports.frames"
        sketches = [_export(seed) for seed in (3, 4)]
        write_frames(target, [encode_sketch(sketch) for sketch in sketches], k=16)
        merger = merge_frames(target)
        assert merger.frames == 2
        assert len(merger.merged()) <= 16

    def test_merge_frames_without_header_k_requires_explicit_k(self, tmp_path):
        target = tmp_path / "exports.frames"
        write_frames(target, [encode_counters({1: 2.0})])
        with pytest.raises(ParameterError, match="declares no k"):
            merge_frames(target)
        assert merge_frames(target, k=4).merged() == {1: 2.0}


class TestNegativeCounters:
    def test_dense_fold_raises_on_negative_frame(self):
        from repro.exceptions import SketchStateError

        merger = StreamingMerger(4)
        merger.add(encode_counters({1: 2.0, 2: 1.0}, k=4))
        with pytest.raises(SketchStateError, match="negative counter"):
            merger.add(encode_counters({3: -1.0}, k=4))

    def test_dense_fold_raises_on_negative_carried_from_first_frame(self):
        from repro.exceptions import SketchStateError

        merger = StreamingMerger(4)
        merger.add(encode_counters({1: -2.0}, k=4))  # single frame: unvalidated
        with pytest.raises(SketchStateError, match="negative counter"):
            merger.add(encode_counters({2: 1.0}, k=4))

    def test_oversized_negative_first_frame_raises_immediately(self):
        from repro.exceptions import SketchStateError

        merger = StreamingMerger(2)
        with pytest.raises(SketchStateError, match="negative counter"):
            merger.add(encode_counters({1: 5.0, 2: -1.0, 3: 2.0}, k=2))


class TestDenseGrowth:
    def test_expanding_key_ranges_stay_dense_and_correct(self):
        frames = [{index * 4096 + offset: float(offset + 1) for offset in range(8)}
                  for index in range(64)]
        merger = StreamingMerger(1024)
        for counters in frames:
            merger.add(encode_counters(counters, k=1024))
        assert merger.columnar  # monotone growth stays on the dense path
        assert merger.merged() == merge_many(frames, 1024)

    def test_write_frames_declares_count_for_sized_collections(self, tmp_path):
        target = tmp_path / "declared.frames"
        payloads = [encode_counters({1: 2.0}), encode_counters({2: 3.0})]
        write_frames(target, payloads, k=4)
        with target.open("rb") as fileobj:
            assert FrameReader(fileobj).header.frames == 2
