"""Unit tests for the Pipeline facade."""

import numpy as np
import pytest

from repro.api import Pipeline, decode, list_mechanisms
from repro.api.registry import CONSUMES
from repro.core import PrivateMisraGries
from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import MisraGriesSketch, merge_many
from repro.streams import zipf_stream


class TestFitAndRelease:
    def test_matches_raw_class_api(self):
        stream = zipf_stream(2_000, 100, rng=0)
        facade = (Pipeline(sketch="misra_gries", mechanism="pmg", k=32,
                           epsilon=1.0, delta=1e-6)
                  .fit(stream).release(rng=7))
        sketch = MisraGriesSketch.from_stream(32, stream)
        raw = PrivateMisraGries(epsilon=1.0, delta=1e-6).release(sketch, rng=7)
        assert facade.as_dict() == raw.as_dict()
        assert facade.metadata == raw.metadata

    def test_ndarray_fit_equals_list_fit(self):
        stream = zipf_stream(3_000, 200, rng=1, as_array=True)
        batched = Pipeline(mechanism="pmg", k=16, epsilon=1.0, delta=1e-6).fit(stream)
        sequential = Pipeline(mechanism="pmg", k=16, epsilon=1.0, delta=1e-6).fit(
            stream.tolist())
        assert batched.counters() == sequential.counters()
        assert batched.stream_length == sequential.stream_length == 3_000

    def test_incremental_fit_accumulates(self):
        stream = zipf_stream(1_000, 50, rng=2)
        split = Pipeline(mechanism="pmg", k=16, epsilon=1.0, delta=1e-6)
        split.fit(stream[:400]).fit(stream[400:])
        whole = Pipeline(mechanism="pmg", k=16, epsilon=1.0, delta=1e-6).fit(stream)
        assert split.counters() == whole.counters()

    def test_release_before_fit_raises(self):
        with pytest.raises(SketchStateError):
            Pipeline(mechanism="pmg", k=8, epsilon=1.0, delta=1e-6).release(rng=0)

    def test_heavy_hitters_uses_cached_release(self):
        stream = [1] * 500 + [2] * 300 + list(range(100, 160))
        pipe = Pipeline(mechanism="pmg", k=32, epsilon=1.0, delta=1e-6).fit(stream)
        released = pipe.release(rng=0)
        heavy = pipe.heavy_hitters(0.2)
        assert set(heavy) <= set(released.keys())
        assert 1 in heavy
        with pytest.raises(ParameterError):
            pipe.heavy_hitters(1.5)

    def test_sketch_spec_dict(self):
        pipe = Pipeline(sketch={"name": "count_min", "depth": 5}, mechanism="gshm",
                        k=64, epsilon=1.0, delta=1e-6)
        pipe.fit([1, 2, 3, 1])
        assert pipe._sketch.depth == 5

    def test_stream_mechanism_buffers(self):
        pipe = Pipeline(mechanism="exact", epsilon=1.0, delta=1e-6).fit([1, 1, 2])
        histogram = pipe.release(rng=0)
        assert histogram.metadata.mechanism == "StabilityHistogram"


class TestSketchList:
    def test_fit_per_stream(self):
        stream = zipf_stream(2_000, 100, rng=3)
        pipe = Pipeline(mechanism="merged", k=32, epsilon=1.0, delta=1e-6)
        pipe.fit(stream[:1_000]).fit(stream[1_000:])
        histogram = pipe.release(rng=0)
        assert "Merged" in histogram.metadata.mechanism
        assert histogram.metadata.stream_length == 2_000

    def test_add_sketch_only_for_sketch_list(self):
        sketch = MisraGriesSketch.from_stream(8, [1, 2, 3])
        with pytest.raises(SketchStateError):
            Pipeline(mechanism="pmg", k=8, epsilon=1.0, delta=1e-6).add_sketch(sketch)


class TestMerge:
    def test_merge_pipelines_equals_merge_many(self):
        stream = zipf_stream(4_000, 300, rng=4)
        left = Pipeline(mechanism="pmg", k=32, epsilon=1.0, delta=1e-6).fit(stream[:2_000])
        right = Pipeline(mechanism="pmg", k=32, epsilon=1.0, delta=1e-6).fit(stream[2_000:])
        merged = left.merge(right)
        assert merged.counters() == merge_many([left.counters(), right.counters()], 32)
        assert merged.stream_length == 4_000
        # pmg is single-stream calibrated: merged state must not release
        # silently (Corollary 18 sensitivity), only with the explicit opt-in.
        with pytest.raises(ParameterError, match="merged-sensitivity"):
            merged.release(rng=0)
        histogram = merged.release(rng=0, allow_single_stream_calibration=True)
        assert histogram.metadata.mechanism == "PMG"

    def test_merge_wire_payloads_columnar(self):
        stream = zipf_stream(4_000, 300, rng=5, as_array=True)
        pipes = [Pipeline(mechanism="pmg", k=32, epsilon=1.0, delta=1e-6).fit(part)
                 for part in (stream[:2_000], stream[2_000:])]
        payloads = [decode(pipe.to_wire()) for pipe in pipes]
        assert all(payload.key_array is not None for payload in payloads)
        empty = Pipeline(mechanism="pmg", k=32, epsilon=1.0, delta=1e-6)
        merged = empty.merge(payloads)
        expected = merge_many([pipe.counters() for pipe in pipes], 32)
        assert merged.counters() == expected

    def test_merge_requires_k(self):
        with pytest.raises(ParameterError, match="k"):
            Pipeline(mechanism="pmg", epsilon=1.0, delta=1e-6).merge([{1: 2.0}])

    def test_merge_rejects_stream_buffering_pipelines(self):
        buffered = Pipeline(mechanism="exact", k=8, epsilon=1.0, delta=1e-6).fit([1, 2])
        with pytest.raises(ParameterError, match="sketch-consuming"):
            buffered.merge({1: 2.0})
        with pytest.raises(ParameterError, match="sketch-consuming"):
            Pipeline(mechanism="pmg", k=8, epsilon=1.0, delta=1e-6).fit([1]).merge(buffered)

    def test_merge_folds_sketch_list_pipelines_via_tree_reduction(self):
        from repro.sketches.merge import merge_tree

        streams = [zipf_stream(400, 40, rng=seed) for seed in (1, 2, 3, 4)]
        lists = Pipeline(mechanism="merged", k=8, epsilon=1.0, delta=1e-6)
        for stream in streams[:2]:
            lists.fit(stream)
        other = Pipeline(mechanism="merged", k=8, epsilon=1.0, delta=1e-6)
        for stream in streams[2:]:
            other.fit(stream)
        merged = lists.merge(other)
        assert merged.stream_length == sum(len(stream) for stream in streams)
        expected = merge_tree(
            [merge_tree([sketch.counters() for sketch in lists._sketches], 8),
             merge_tree([sketch.counters() for sketch in other._sketches], 8)], 8)
        assert merged.counters() == expected
        assert merged.release(rng=0).metadata.sketch_size == 8

    def test_from_sketch_propagates_k_to_mechanism(self):
        sketch = MisraGriesSketch.from_stream(24, zipf_stream(500, 50, rng=7))
        pipe = Pipeline.from_sketch(sketch, mechanism="chan", epsilon=1.0, delta=1e-6)
        assert pipe.mechanism.impl.k == 24
        assert pipe.release(rng=0).metadata.sketch_size == 24

    def test_merged_pipeline_refuses_further_fit(self):
        left = Pipeline(mechanism="pmg", k=8, epsilon=1.0, delta=1e-6).fit([1, 2])
        merged = left.merge({3: 1.0})
        with pytest.raises(SketchStateError):
            merged.fit([4])


class TestMergedMechanismWireRouting:
    def test_columnar_envelopes_route_through_release_arrays(self):
        stream = zipf_stream(4_000, 300, rng=8, as_array=True)
        envelopes = []
        for part in (stream[:2_000], stream[2_000:]):
            pipe = Pipeline(mechanism="pmg", k=32, epsilon=1.0, delta=1e-6).fit(part)
            envelopes.append(decode(pipe.to_wire()))
        aggregator = Pipeline(mechanism="merged", k=32, epsilon=1.0, delta=1e-6)
        for envelope in envelopes:
            aggregator.add_sketch(envelope)
        histogram = aggregator.release(rng=0)
        assert "columnar wire" in histogram.metadata.notes
        assert histogram.metadata.stream_length == 4_000
        # ... and equals the dict-path release with the same seed.
        sketches = [MisraGriesSketch.from_stream(32, part.tolist())
                    for part in (stream[:2_000], stream[2_000:])]
        from repro.core import PrivateMergedRelease

        reference = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=32).release(
            sketches, rng=0)
        assert histogram.as_dict() == reference.as_dict()

    def test_merged_requires_k(self):
        with pytest.raises(ParameterError, match="sketch size k"):
            Pipeline(mechanism="merged", epsilon=1.0, delta=1e-6)


class TestWireExport:
    def test_to_wire_roundtrip(self):
        pipe = Pipeline(mechanism="pmg", k=16, epsilon=1.0, delta=1e-6)
        pipe.fit(zipf_stream(1_000, 50, rng=6))
        payload = decode(pipe.to_wire())
        assert payload.kind == "misra_gries_paper"
        assert payload.stream_length == 1_000

    def test_to_wire_requires_state(self):
        with pytest.raises(SketchStateError):
            Pipeline(mechanism="pmg", k=8, epsilon=1.0, delta=1e-6).to_wire()


def test_every_mechanism_constructible_via_pipeline():
    """Acceptance: Pipeline(mechanism=<name>) works for all registered names."""
    for name in list_mechanisms():
        pipe = Pipeline(mechanism=name, k=16, epsilon=1.0, delta=1e-6,
                        universe_size=64, max_contribution=4, phi=0.02)
        assert pipe.mechanism_name == name
        assert pipe.mechanism.consumes in CONSUMES


def test_sketch_list_merge_accepts_wire_payload_entries():
    """add_sketch keeps decoded payloads as-is; merge must handle them."""
    from repro.api import encode_counters

    pipe = Pipeline(mechanism="merged", k=8, epsilon=1.0, delta=1e-6)
    pipe.add_sketch(decode(encode_counters({1: 3.0, 2: 1.0}, k=8, stream_length=4)))
    merged = pipe.merge({3: 2.0})
    assert merged.counters() == {1: 3.0, 2: 1.0, 3: 2.0}
    assert merged.stream_length == 4


def test_sequential_fit_after_sharded_fit_raises_with_guidance():
    pipe = Pipeline(sketch="misra_gries", mechanism="pmg", k=8,
                    epsilon=1.0, delta=1e-6)
    pipe.fit(np.arange(100, dtype=np.int64), workers=2)
    with pytest.raises(SketchStateError, match="workers"):
        pipe.fit(np.arange(10, dtype=np.int64))


def test_sharded_fit_honors_spec_dict_k():
    """The spec dict's k must drive the shard size, like the sequential fit."""
    stream = np.asarray([v % 100 for v in range(2000)] + [0] * 200, dtype=np.int64)
    pipe = Pipeline(sketch={"name": "misra_gries", "k": 128}, mechanism="pmg",
                    epsilon=1.0, delta=1e-6)  # only the spec carries k
    pipe.fit(stream, workers=2)
    # k=128 > 100 distinct keys: nothing may be evicted by the shard merge.
    assert len(pipe.counters()) == 100


def test_sketch_list_merge_rejects_untrusted_strategy():
    untrusted = Pipeline(mechanism={"name": "merged", "strategy": "untrusted"},
                         k=8, epsilon=1.0, delta=1e-6).fit([1, 2, 3])
    with pytest.raises(ParameterError, match="untrusted"):
        untrusted.merge({4: 1.0})
    trusted = Pipeline(mechanism="merged", k=8, epsilon=1.0, delta=1e-6).fit([1, 2])
    with pytest.raises(ParameterError, match="untrusted"):
        trusted.merge(Pipeline(mechanism={"name": "merged", "strategy": "untrusted"},
                               k=8, epsilon=1.0, delta=1e-6).fit([5, 6]))
