"""Registry-wide conformance suite: every entry honors the same contract.

Parametrized over **every** ``list_mechanisms()`` / ``list_sketches()`` entry
— no skips, no per-name allowlist.  The only branching is on the entry's own
``consumes`` tag, which is exactly the dispatch contract the registry
promises.  Each mechanism must:

* construct from a spec dict round-tripped through ``normalize_spec``,
* drive a successful end-to-end :class:`Pipeline` release on a small seeded
  stream chosen by its ``consumes`` tag,
* release histograms whose keys all come from the input stream,
* reject invalid parameters with the registry's
  :class:`~repro.exceptions.ParameterError` (never a bare ``TypeError`` from
  deep inside a constructor).

The ``repro list`` CLI output is asserted to match the parametrized set, so
the table users see and the set this suite locks down cannot drift apart.

The whole suite runs **twice** — once with ``REPRO_KERNELS=python`` and once
with ``REPRO_KERNELS=compiled`` (skipped when no compiled provider exists) —
so every registry entry honours the identical contract on both kernel
backends.  The env var is the strongest override the tier has, so this
exercises exactly what a deploy pinning a backend would run.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.api import Pipeline, describe_pipeline, list_mechanisms, list_sketches
from repro.api.registry import (
    CONSUMES,
    MechanismAdapter,
    make_mechanism,
    make_sketch,
    mechanism_entry,
    normalize_spec,
    sketch_entry,
)
from repro.cli import main
from repro.core.results import PrivateHistogram
from repro.exceptions import ParameterError

#: The pipeline-level parameter grab-bag: every factory filters this to its
#: own signature, so one set drives every registered mechanism.
PARAMS = dict(k=16, epsilon=4.0, delta=1e-6, universe_size=32,
              max_contribution=4, phi=0.05, block_size=30)

#: Universe of the conformance stream.  The stream covers the whole universe,
#: so "released keys came from the input" holds even for mechanisms that
#: enumerate the universe (pure_dp, local_dp, prefix_tree).
UNIVERSE = 32

MECHANISMS = sorted(list_mechanisms())
SKETCHES = sorted(list_sketches())


@pytest.fixture(autouse=True, params=["python", "compiled"])
def kernel_backend(request, monkeypatch):
    """Run every conformance test under both kernel backends."""
    if request.param == "compiled" and not kernels.available():
        pytest.skip("no compiled kernel provider in this environment")
    monkeypatch.setenv(kernels.ENV_VAR, request.param)
    return request.param


def _flat_stream():
    """A seeded integer stream covering the universe, with clear heavy hitters."""
    stream = [value % UNIVERSE for value in range(2 * UNIVERSE)]
    stream += [0] * 60 + [1] * 40 + [2] * 25
    return stream


def _user_stream():
    """The flat stream regrouped into per-user sets of <= max_contribution."""
    users = [[index, (index + 1) % UNIVERSE] for index in range(UNIVERSE)]
    users += [[0, 1, 2]] * 20
    return users


def _fitted_pipeline(name):
    pipeline = Pipeline(mechanism=name, **PARAMS)
    consumes = pipeline.mechanism.consumes
    if consumes == "user_stream":
        pipeline.fit(_user_stream())
        allowed = {element for user in _user_stream() for element in user}
    elif consumes == "sketch_list":
        stream = _flat_stream()
        pipeline.fit(stream[: len(stream) // 2])
        pipeline.fit(stream[len(stream) // 2:])
        allowed = set(stream)
    else:  # sketch, stream, checkpointed_stream: one flat element stream
        stream = _flat_stream()
        pipeline.fit(stream)
        allowed = set(stream)
    return pipeline, allowed


# ---------------------------------------------------------------------------
# Mechanisms
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", MECHANISMS)
def test_mechanism_entry_contract(name):
    entry = mechanism_entry(name)
    assert entry.name == name
    assert entry.consumes in CONSUMES
    assert entry.description, f"{name} must carry a description"
    described = describe_pipeline(name)
    assert described["consumes"] == entry.consumes


@pytest.mark.parametrize("name", MECHANISMS)
def test_mechanism_spec_round_trip_construction(name):
    spec = {"name": name}
    round_tripped_name, params = normalize_spec(spec)
    assert (round_tripped_name, params) == (name, {})
    adapter = make_mechanism(spec, **PARAMS)
    assert isinstance(adapter, MechanismAdapter)
    assert adapter.name == name
    assert adapter.consumes == mechanism_entry(name).consumes


@pytest.mark.parametrize("name", MECHANISMS)
def test_mechanism_end_to_end_release_via_consumes_tag(name):
    pipeline, allowed = _fitted_pipeline(name)
    histogram = pipeline.release(rng=0)
    assert isinstance(histogram, PrivateHistogram)
    assert histogram.metadata.epsilon > 0
    released = set(histogram.counts)
    assert released <= allowed, (
        f"{name} released keys outside its input: {sorted(released - allowed)[:5]}")


@pytest.mark.parametrize("name", MECHANISMS)
def test_mechanism_rejects_unknown_spec_parameter(name):
    with pytest.raises(ParameterError, match="does not accept"):
        make_mechanism({"name": name, "definitely_not_a_parameter": 1}, **PARAMS)


@pytest.mark.parametrize("name", MECHANISMS)
def test_mechanism_rejects_invalid_epsilon_with_parameter_error(name):
    params = dict(PARAMS, epsilon=-1.0)
    with pytest.raises(ParameterError):
        make_mechanism(name, **params)


# ---------------------------------------------------------------------------
# Sketches
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", SKETCHES)
def test_sketch_entry_contract(name):
    entry = sketch_entry(name)
    assert entry.name == name
    assert entry.description, f"{name} must carry a description"


@pytest.mark.parametrize("name", SKETCHES)
def test_sketch_spec_round_trip_and_uniform_interface(name):
    sketch = make_sketch({"name": name}, k=16)
    stream = _flat_stream()
    sketch.update_all(stream)
    assert sketch.stream_length == len(stream)
    counters = sketch.counters()
    assert set(counters) <= set(stream)
    assert all(isinstance(value, float) for value in counters.values())
    assert isinstance(sketch.estimate(0), float)


@pytest.mark.parametrize("name", SKETCHES)
def test_sketch_rejects_unknown_spec_parameter(name):
    with pytest.raises(ParameterError, match="does not accept"):
        make_sketch({"name": name, "definitely_not_a_parameter": 1}, k=16)


def test_misra_gries_spec_accepts_backend_parameter(kernel_backend):
    sketch = make_sketch({"name": "misra_gries", "backend": kernel_backend},
                         k=16)
    sketch.update_all(_flat_stream())
    assert sketch.backend == kernel_backend
    assert sketch.resolved_backend() in ("python",) + kernels._PROVIDER_ORDER


def test_misra_gries_spec_rejects_unknown_backend():
    with pytest.raises(ParameterError, match="backend must be one of"):
        make_sketch({"name": "misra_gries", "backend": "fortran"}, k=16)


# ---------------------------------------------------------------------------
# CLI listing matches the parametrized set
# ---------------------------------------------------------------------------

def test_repro_list_matches_registered_set(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in MECHANISMS:
        assert name in output, f"mechanism {name} missing from `repro list`"
    for name in SKETCHES:
        assert name in output, f"sketch {name} missing from `repro list`"
    for consumes in sorted({mechanism_entry(name).consumes for name in MECHANISMS}):
        assert consumes in output, f"consumes kind {consumes} missing from `repro list`"
