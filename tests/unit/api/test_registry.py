"""Unit tests for the unified sketch/mechanism registry."""

import pytest

from repro.api import (
    MechanismAdapter,
    ReleaseMechanism,
    Sketch,
    list_mechanisms,
    list_sketches,
    make_mechanism,
    make_sketch,
    mechanism_entry,
    normalize_spec,
    register_mechanism,
    register_sketch,
    sketch_entry,
)
from repro.core.results import PrivateHistogram
from repro.exceptions import ParameterError
from repro.sketches import MisraGriesSketch
from repro.streams import zipf_stream
from repro.streams.user_streams import distinct_user_stream

#: Pipeline-level parameter grab-bag sufficient for every registered mechanism.
PARAMS = dict(k=16, epsilon=1.0, delta=1e-6, universe_size=64,
              max_contribution=4, phi=0.02)

EXPECTED_MECHANISMS = {
    "pmg", "pure_dp", "reduced", "gshm", "pamg", "user_level", "merged",
    "chan", "local_dp", "prefix_tree", "bohler_kerschbaum", "exact",
}
EXPECTED_SKETCHES = {
    "misra_gries", "misra_gries_standard", "space_saving", "count_min",
    "count_sketch", "exact",
}


class TestEnumeration:
    def test_all_mechanisms_registered(self):
        assert EXPECTED_MECHANISMS <= set(list_mechanisms())

    def test_all_sketches_registered(self):
        assert EXPECTED_SKETCHES <= set(list_sketches())

    def test_descriptions_nonempty(self):
        assert all(list_mechanisms().values())
        assert all(list_sketches().values())

    def test_aliases_resolve_but_are_not_listed(self):
        assert mechanism_entry("bk").name == "bohler_kerschbaum"
        assert sketch_entry("mg").name == "misra_gries"
        assert "bk" not in list_mechanisms()
        assert "mg" not in list_sketches()


class TestSpecs:
    def test_normalize_string(self):
        assert normalize_spec("pmg") == ("pmg", {})

    def test_normalize_dict(self):
        name, params = normalize_spec({"name": "pmg", "noise": "geometric"})
        assert name == "pmg"
        assert params == {"noise": "geometric"}

    def test_missing_name_rejected(self):
        with pytest.raises(ParameterError):
            normalize_spec({"noise": "geometric"})

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown mechanism"):
            make_mechanism("not_a_mechanism")
        with pytest.raises(ParameterError, match="unknown sketch"):
            make_sketch("not_a_sketch")

    def test_unknown_spec_parameter_rejected(self):
        with pytest.raises(ParameterError, match="does not accept"):
            make_mechanism({"name": "pmg", "typo_param": 1}, **PARAMS)

    def test_defaults_are_filtered_spec_params_win(self):
        adapter = make_mechanism({"name": "pmg", "noise": "geometric"}, **PARAMS)
        assert adapter.impl.noise == "geometric"
        assert adapter.impl.epsilon == 1.0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            register_mechanism("pmg")(lambda: None)
        with pytest.raises(ParameterError, match="duplicate"):
            register_sketch("misra_gries")(lambda: None)


@pytest.mark.parametrize("name", sorted(EXPECTED_MECHANISMS))
class TestMechanismRoundTrip:
    """Acceptance: spec -> instance -> release works for every mechanism."""

    def _fit_input(self, adapter):
        if adapter.consumes == "user_stream":
            return list(distinct_user_stream(60, 40, max_contribution=4, rng=1))
        stream = zipf_stream(600, 60, rng=0)
        if adapter.consumes == "sketch":
            return MisraGriesSketch.from_stream(16, stream)
        if adapter.consumes == "sketch_list":
            return [MisraGriesSketch.from_stream(16, stream[:300]),
                    MisraGriesSketch.from_stream(16, stream[300:])]
        return stream

    def test_string_spec_releases(self, name):
        adapter = make_mechanism(name, **PARAMS)
        assert isinstance(adapter, MechanismAdapter)
        assert isinstance(adapter, ReleaseMechanism)
        histogram = adapter.release(self._fit_input(adapter), rng=0)
        assert isinstance(histogram, PrivateHistogram)
        assert histogram.metadata.epsilon > 0

    def test_dict_spec_releases(self, name):
        adapter = make_mechanism({"name": name, "epsilon": 0.5}, **PARAMS)
        assert adapter.impl.epsilon == 0.5
        histogram = adapter.release(self._fit_input(adapter), rng=1)
        assert isinstance(histogram, PrivateHistogram)


@pytest.mark.parametrize("name", sorted(EXPECTED_SKETCHES))
def test_every_sketch_constructible_and_satisfies_protocol(name):
    sketch = make_sketch(name, k=8)
    assert isinstance(sketch, Sketch)
    sketch.update_all([1, 2, 1, 3, 1])
    assert sketch.estimate(1) >= 1.0
    assert sketch.stream_length == 5
    assert isinstance(sketch.counters(), dict)
