"""Unit tests for the v2 columnar wire protocol."""

import json

import numpy as np
import pytest

from repro.api import wire
from repro.core import PrivateMisraGries
from repro.exceptions import SketchStateError
from repro.sketches import (
    MisraGriesSketch,
    StandardMisraGriesSketch,
    load_sketch,
    merge_many,
    merge_many_arrays,
    save_sketch,
)
from repro.sketches.misra_gries import DummyKey
from repro.streams import zipf_stream


def _json_roundtrip(payload):
    return json.loads(json.dumps(payload))


class TestSketchEnvelope:
    def test_integer_sketch_bit_exact(self):
        sketch = MisraGriesSketch.from_stream(32, zipf_stream(5_000, 300, rng=0))
        payload = _json_roundtrip(wire.encode_sketch(sketch))
        assert payload["format"] == wire.WIRE_FORMAT_VERSION
        assert payload["key_encoding"] == "int"
        restored = wire.payload_to_sketch(payload)
        assert restored.raw_counters() == sketch.raw_counters()
        assert restored.stream_length == sketch.stream_length
        assert restored.decrement_rounds == sketch.decrement_rounds

    def test_sketch_with_dummies_uses_tokens(self):
        sketch = MisraGriesSketch.from_stream(8, [1, 2, 3])  # 5 dummies remain
        payload = _json_roundtrip(wire.encode_sketch(sketch))
        assert payload["key_encoding"] == "token"
        restored = wire.payload_to_sketch(payload)
        assert restored.raw_counters() == sketch.raw_counters()
        assert sum(isinstance(key, DummyKey) for key in restored.raw_counters()) == 5

    def test_standard_sketch_roundtrip(self):
        sketch = StandardMisraGriesSketch.from_stream(8, zipf_stream(500, 40, rng=1))
        restored = wire.payload_to_sketch(_json_roundtrip(wire.encode_sketch(sketch)))
        assert isinstance(restored, StandardMisraGriesSketch)
        assert restored.counters() == sketch.counters()

    def test_restored_sketch_accepts_updates(self):
        stream = zipf_stream(1_000, 30, rng=2)
        sketch = MisraGriesSketch.from_stream(8, stream[:500])
        restored = wire.payload_to_sketch(_json_roundtrip(wire.encode_sketch(sketch)))
        restored.update_all(stream[500:])
        assert restored.counters() == MisraGriesSketch.from_stream(8, stream).counters()


class TestHistogramEnvelope:
    def test_bit_exact_roundtrip(self):
        sketch = MisraGriesSketch.from_stream(16, zipf_stream(5_000, 100, rng=3))
        histogram = PrivateMisraGries(epsilon=1.0, delta=1e-6).release(sketch, rng=4)
        restored = wire.payload_to_histogram(
            _json_roundtrip(wire.encode_histogram(histogram)))
        assert restored.as_dict() == histogram.as_dict()
        assert restored.metadata == histogram.metadata

    def test_wrong_kind_rejected(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 1, 2])
        payload = wire.encode_sketch(sketch)
        with pytest.raises(SketchStateError):
            wire.payload_to_histogram(payload)


class TestCountersEnvelope:
    def test_mixed_keys_roundtrip(self):
        counters = {1: 2.0, "alpha": 3.5, b"\x00\xff": 1.25, "with:colon": 4.0}
        payload = _json_roundtrip(wire.encode_counters(counters, k=8, stream_length=11))
        decoded = wire.decode(payload)
        assert decoded.counters() == counters
        assert decoded.k == 8
        assert decoded.stream_length == 11
        assert decoded.key_array is None

    def test_int64_overflow_falls_back_to_tokens(self):
        counters = {2 ** 70: 1.0, 1: 2.0}
        payload = wire.encode_counters(counters)
        assert payload["key_encoding"] == "token"
        assert wire.decode(_json_roundtrip(payload)).counters() == counters


class TestColumnarFastPath:
    def test_decode_produces_int_array_feeding_merge(self):
        streams = [zipf_stream(2_000, 200, rng=seed) for seed in (5, 6, 7)]
        sketches = [MisraGriesSketch.from_stream(32, stream) for stream in streams]
        payloads = [wire.decode(_json_roundtrip(wire.encode_counters(sketch)))
                    for sketch in sketches]
        keys_list, values_list = zip(*(payload.columnar() for payload in payloads))
        assert all(keys.dtype == np.int64 for keys in keys_list)
        merged = merge_many_arrays(list(keys_list), list(values_list), 32)
        assert merged == merge_many([sketch.counters() for sketch in sketches], 32)


class TestVersioning:
    def test_wire_version_detection(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 2, 1])
        from repro.sketches.serialization import sketch_to_dict

        assert wire.wire_version(sketch_to_dict(sketch)) == 1
        assert wire.wire_version(wire.encode_sketch(sketch)) == 2
        with pytest.raises(SketchStateError):
            wire.wire_version({"format": 3})

    def test_decode_rejects_v1(self):
        from repro.sketches.serialization import sketch_to_dict

        with pytest.raises(SketchStateError):
            wire.decode(sketch_to_dict(MisraGriesSketch(2)))

    def test_malformed_columns_rejected(self):
        with pytest.raises(SketchStateError):
            wire.decode({"format": 2, "kind": "counters", "key_encoding": "int",
                         "keys": [1, 2], "values": [1.0]})

    def test_unknown_encoding_rejected(self):
        with pytest.raises(SketchStateError):
            wire.decode({"format": 2, "kind": "counters", "key_encoding": "base91",
                         "keys": [], "values": []})

    def test_unknown_version_error_names_supported_versions(self):
        """The error must tell the user what the library *does* speak."""
        with pytest.raises(SketchStateError) as excinfo:
            wire.wire_version({"format": 3})
        message = str(excinfo.value)
        assert "format: 3" in message
        assert "'format_version': 1" in message and "'format': 2" in message
        with pytest.raises(SketchStateError, match="declares no wire version"):
            wire.wire_version({"counters": {}})
        with pytest.raises(SketchStateError) as excinfo:
            wire.decode({"format": 99, "kind": "counters"})
        assert "supported versions" in str(excinfo.value)

    def test_load_payload_unknown_version_names_file_and_versions(self, tmp_path):
        target = tmp_path / "future.sketch.json"
        target.write_text(json.dumps({"format": 7, "kind": "counters",
                                      "keys": [], "values": []}))
        with pytest.raises(SketchStateError) as excinfo:
            wire.load_payload(target)
        message = str(excinfo.value)
        assert str(target) in message, "the failing file path must be named"
        assert "format: 7" in message
        assert "supported versions" in message

    def test_load_payload_versionless_file_names_path(self, tmp_path):
        target = tmp_path / "not-a-sketch.json"
        target.write_text(json.dumps({"counters": {"i:1": 2.0}}))
        with pytest.raises(SketchStateError) as excinfo:
            wire.load_payload(target)
        assert str(target) in str(excinfo.value)
        assert "declares no wire version" in str(excinfo.value)


def test_save_sketch_rejects_non_restorable_types(tmp_path):
    """save_sketch/load_sketch stay symmetric: non-MG sketches are refused."""
    from repro.exceptions import ParameterError
    from repro.sketches import CountMinSketch

    sketch = CountMinSketch(width=16, depth=2)
    sketch.update_all([1, 2, 3])
    with pytest.raises(ParameterError, match="encode_counters"):
        save_sketch(sketch, tmp_path / "cm.json")


class TestFileInterop:
    def test_save_v1_load_v2_default(self, tmp_path):
        """v1 files written by the old layout still load (cross-read)."""
        sketch = MisraGriesSketch.from_stream(16, zipf_stream(2_000, 100, rng=8))
        v1, v2 = tmp_path / "sketch.v1.json", tmp_path / "sketch.v2.json"
        save_sketch(sketch, v1, format="v1")
        save_sketch(sketch, v2, format="v2")
        assert json.loads(v1.read_text())["format_version"] == 1
        assert json.loads(v2.read_text())["format"] == 2
        restored_v1, restored_v2 = load_sketch(v1), load_sketch(v2)
        assert restored_v1.raw_counters() == sketch.raw_counters()
        assert restored_v2.raw_counters() == sketch.raw_counters()

    def test_load_payload_upconverts_v1(self, tmp_path):
        sketch = MisraGriesSketch.from_stream(16, zipf_stream(2_000, 100, rng=9))
        v1 = tmp_path / "sketch.v1.json"
        save_sketch(sketch, v1, format="v1")
        payload = wire.load_payload(v1)
        assert payload.kind == "misra_gries_paper"
        assert payload.stream_length == sketch.stream_length
