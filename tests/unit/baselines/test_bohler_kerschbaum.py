"""Unit tests for the Böhler-Kerschbaum baseline."""

import pytest

from repro.baselines import BohlerKerschbaumMG
from repro.sketches import MisraGriesSketch
from repro.streams import zipf_stream


class TestAsPublished:
    def test_noise_scale_uses_sensitivity_one(self):
        mechanism = BohlerKerschbaumMG(epsilon=0.5, delta=1e-6, k=64, as_published=True)
        assert mechanism.sensitivity == 1.0
        assert mechanism.noise_scale == pytest.approx(2.0)

    def test_metadata_flags_the_problem(self):
        stream = zipf_stream(5_000, 100, rng=0)
        mechanism = BohlerKerschbaumMG(epsilon=1.0, delta=1e-6, k=32, as_published=True)
        histogram = mechanism.run(stream, rng=1)
        assert histogram.metadata.mechanism == "BK-AsPublished"
        assert "does NOT satisfy" in histogram.metadata.notes

    def test_expected_error_independent_of_k(self):
        small = BohlerKerschbaumMG(1.0, 1e-6, k=8, as_published=True).expected_max_error()
        large = BohlerKerschbaumMG(1.0, 1e-6, k=1024, as_published=True).expected_max_error()
        assert small == pytest.approx(large)


class TestCorrected:
    def test_noise_scale_uses_sensitivity_k(self):
        mechanism = BohlerKerschbaumMG(epsilon=0.5, delta=1e-6, k=64)
        assert mechanism.sensitivity == 64.0
        assert mechanism.noise_scale == pytest.approx(128.0)

    def test_threshold_larger_than_published(self):
        published = BohlerKerschbaumMG(1.0, 1e-6, k=64, as_published=True).threshold
        corrected = BohlerKerschbaumMG(1.0, 1e-6, k=64).threshold
        assert corrected > published

    def test_release_thresholds_counts(self):
        stream = zipf_stream(50_000, 200, exponent=1.4, rng=2)
        mechanism = BohlerKerschbaumMG(epsilon=1.0, delta=1e-6, k=32)
        histogram = mechanism.run(stream, rng=3)
        assert all(value >= mechanism.threshold for value in histogram.counts.values())
        assert histogram.metadata.mechanism == "BK-Corrected"


class TestBehaviouralComparison:
    def test_published_variant_tracks_sketch_much_more_closely(self):
        # The published variant adds only O(1/eps) noise, which is exactly why
        # it cannot be private: its outputs are far closer to the sketch than
        # any correctly-calibrated release with sensitivity k.
        stream = zipf_stream(50_000, 100, exponent=1.5, rng=4)
        sketch = MisraGriesSketch.from_stream(64, stream)
        counters = sketch.counters()
        published = BohlerKerschbaumMG(1.0, 1e-6, k=64, as_published=True)
        corrected = BohlerKerschbaumMG(1.0, 1e-6, k=64)

        def deviation(histogram):
            values = [abs(histogram.estimate(key) - value)
                      for key, value in counters.items() if key in histogram]
            return sum(values) / max(len(values), 1)

        published_dev = sum(deviation(published.release(sketch, rng=seed)) for seed in range(5))
        corrected_dev = sum(deviation(corrected.release(sketch, rng=seed)) for seed in range(5))
        assert corrected_dev > 5 * published_dev

    def test_reproducible(self):
        stream = zipf_stream(2_000, 50, rng=5)
        mechanism = BohlerKerschbaumMG(epsilon=1.0, delta=1e-6, k=16)
        assert mechanism.run(stream, rng=6).as_dict() == mechanism.run(stream, rng=6).as_dict()
