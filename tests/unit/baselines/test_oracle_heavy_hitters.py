"""Unit tests for the private frequency-oracle baseline."""

import pytest

from repro.baselines import PrivateFrequencyOracle
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


class TestConfiguration:
    def test_kind_validated(self):
        with pytest.raises(ParameterError):
            PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=16, depth=2, sketch_kind="bloom")

    def test_noise_scale_pure_vs_approximate(self):
        import math

        pure = PrivateFrequencyOracle(epsilon=1.0, delta=0.0, width=64, depth=4)
        approx = PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=64, depth=4)
        assert pure.noise_scale == pytest.approx(4.0)
        # Gaussian noise scales with sqrt(depth) instead of depth.
        assert approx.noise_scale == pytest.approx(
            math.sqrt(2.0 * math.log(1.25 / 1e-6) * 4), rel=1e-6)


class TestOracleRelease:
    def test_noisy_table_shape(self):
        oracle = PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=64, depth=3)
        sketch, table = oracle.release_oracle(zipf_stream(1_000, 50, rng=0), rng=1)
        assert table.shape == (3, 64)
        assert sketch.stream_length == 1_000

    def test_reproducible(self):
        oracle = PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=32, depth=3)
        stream = zipf_stream(500, 30, rng=2)
        _, first = oracle.release_oracle(stream, rng=7)
        _, second = oracle.release_oracle(stream, rng=7)
        assert (first == second).all()


class TestHeavyHitters:
    @pytest.mark.parametrize("kind", ["count_min", "count_sketch"])
    def test_recovers_planted_heavy_hitters(self, kind):
        stream = [0] * 5_000 + [1] * 4_000 + zipf_stream(10_000, 1_000, exponent=1.01, rng=3)
        oracle = PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=512, depth=5,
                                        sketch_kind=kind)
        histogram = oracle.heavy_hitters(stream, universe=range(1_000), phi=0.1, rng=4)
        assert 0 in histogram and 1 in histogram

    def test_phi_validated(self):
        oracle = PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=32, depth=3)
        with pytest.raises(ParameterError):
            oracle.heavy_hitters([1, 2], universe=range(5), phi=2.0)

    def test_metadata_mentions_universe_iteration(self):
        stream = zipf_stream(2_000, 100, exponent=1.5, rng=5)
        oracle = PrivateFrequencyOracle(epsilon=1.0, delta=1e-6, width=128, depth=3)
        histogram = oracle.heavy_hitters(stream, universe=range(100), phi=0.05, rng=6)
        assert "universe iteration" in histogram.metadata.notes
