"""Unit tests for the Chan et al. baseline."""

import pytest

from repro.baselines import ChanPrivateMisraGries
from repro.core import PrivateMisraGries
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import zipf_stream


class TestConfiguration:
    def test_pure_variant_requires_universe(self):
        with pytest.raises(ParameterError):
            ChanPrivateMisraGries(epsilon=1.0, k=16)

    def test_noise_scale_is_k_over_epsilon(self):
        mechanism = ChanPrivateMisraGries(epsilon=0.5, k=16, delta=1e-6)
        assert mechanism.noise_scale == pytest.approx(32.0)

    def test_threshold_grows_with_k(self):
        small = ChanPrivateMisraGries(epsilon=1.0, k=8, delta=1e-6).threshold
        large = ChanPrivateMisraGries(epsilon=1.0, k=256, delta=1e-6).threshold
        assert large > small

    def test_expected_error_grows_linearly_with_k(self):
        small = ChanPrivateMisraGries(epsilon=1.0, k=8, delta=1e-6).expected_max_error()
        large = ChanPrivateMisraGries(epsilon=1.0, k=512, delta=1e-6).expected_max_error()
        assert large > 50 * small


class TestThresholdedVariant:
    def test_release(self):
        stream = zipf_stream(20_000, 300, exponent=1.4, rng=0)
        mechanism = ChanPrivateMisraGries(epsilon=1.0, k=32, delta=1e-6)
        histogram = mechanism.run(stream, rng=1)
        assert histogram.metadata.mechanism == "Chan-Thresholded"
        assert all(value >= mechanism.threshold for value in histogram.counts.values())

    def test_released_keys_come_from_sketch(self):
        stream = zipf_stream(10_000, 200, rng=2)
        sketch = MisraGriesSketch.from_stream(32, stream)
        mechanism = ChanPrivateMisraGries(epsilon=1.0, k=32, delta=1e-6)
        histogram = mechanism.release(sketch, rng=3)
        assert set(histogram.keys()) <= set(sketch.counters().keys())

    def test_noisier_than_pmg(self):
        # On the same sketch the Chan release deviates from the sketch values
        # much more than Algorithm 2 (noise scale k/eps vs 1/eps).
        stream = zipf_stream(50_000, 100, exponent=1.5, rng=4)
        sketch = MisraGriesSketch.from_stream(64, stream)
        counters = sketch.counters()
        chan = ChanPrivateMisraGries(epsilon=1.0, k=64, delta=1e-6)
        pmg = PrivateMisraGries(epsilon=1.0, delta=1e-6)

        def released_deviation(histogram):
            deviations = [abs(histogram.estimate(key) - value)
                          for key, value in counters.items() if key in histogram]
            return sum(deviations) / max(len(deviations), 1)

        chan_dev = sum(released_deviation(chan.release(sketch, rng=seed)) for seed in range(5))
        pmg_dev = sum(released_deviation(pmg.release(sketch, rng=seed)) for seed in range(5))
        assert chan_dev > 5 * pmg_dev


class TestPureVariant:
    def test_release_over_universe(self):
        stream = zipf_stream(20_000, 200, exponent=1.5, rng=5)
        mechanism = ChanPrivateMisraGries(epsilon=1.0, k=16, universe_size=200)
        histogram = mechanism.run(stream, rng=6)
        assert histogram.metadata.mechanism == "Chan-PureDP"
        assert len(histogram) == 16

    def test_can_release_elements_outside_stream(self):
        # With noise scale k/eps the top-k of the noisy universe routinely
        # includes elements that never appeared — one symptom of the large
        # noise the paper criticizes.
        stream = [0] * 1_000
        mechanism = ChanPrivateMisraGries(epsilon=1.0, k=16, universe_size=10_000)
        histogram = mechanism.run(stream, rng=7)
        outside = [key for key in histogram.keys() if key != 0]
        assert len(outside) >= 10

    def test_rejects_non_integer_keys(self):
        mechanism = ChanPrivateMisraGries(epsilon=1.0, k=4, universe_size=10)
        with pytest.raises(ParameterError):
            mechanism.release({"a": 1.0})
