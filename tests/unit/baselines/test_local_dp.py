"""Unit tests for the local-DP (OUE) frequency estimation baseline."""

import numpy as np
import pytest

from repro.baselines.local_dp import LocalDPFrequencyEstimator
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


class TestConfiguration:
    def test_parameters_validated(self):
        with pytest.raises(Exception):
            LocalDPFrequencyEstimator(epsilon=0.0, universe_size=10)
        with pytest.raises(Exception):
            LocalDPFrequencyEstimator(epsilon=1.0, universe_size=0)

    def test_flip_probability_formula(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=10)
        assert estimator.flip_probability == pytest.approx(1.0 / (np.e + 1.0))
        assert estimator.keep_probability == 0.5

    def test_noise_floor_scales_with_sqrt_n(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=10)
        assert estimator.expected_standard_deviation(10_000) == pytest.approx(
            10 * estimator.expected_standard_deviation(100))


class TestRandomizer:
    def test_report_shape_and_binary(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=32)
        report = estimator.randomize(5, rng=0)
        assert report.shape == (32,)
        assert set(np.unique(report)) <= {0, 1}

    def test_out_of_universe_rejected(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=8)
        with pytest.raises(ParameterError):
            estimator.randomize(8)

    def test_cold_bit_rate_matches_flip_probability(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=2_000)
        report = estimator.randomize(0, rng=1)
        cold_rate = report[1:].mean()
        assert cold_rate == pytest.approx(estimator.flip_probability, abs=0.03)


class TestAggregation:
    def test_empty_inputs(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=4)
        assert estimator.aggregate([]) == {}
        assert estimator.estimate_frequencies([]) == {}

    def test_aggregate_validates_shape(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=4)
        with pytest.raises(ParameterError):
            estimator.aggregate([np.zeros(3)])

    def test_estimates_roughly_unbiased(self):
        universe = 20
        stream = [0] * 4_000 + [1] * 2_000 + [2] * 1_000
        estimator = LocalDPFrequencyEstimator(epsilon=2.0, universe_size=universe)
        estimates = estimator.estimate_frequencies(stream, rng=0)
        tolerance = 4 * estimator.expected_standard_deviation(len(stream))
        assert abs(estimates[0] - 4_000) <= tolerance
        assert abs(estimates[1] - 2_000) <= tolerance
        assert abs(estimates[5] - 0) <= tolerance

    def test_manual_and_vectorized_protocols_agree_statistically(self):
        universe = 10
        stream = [3] * 3_000
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=universe)
        vectorized = estimator.estimate_frequencies(stream, rng=1)
        reports = [estimator.randomize(x, rng=rng)
                   for x, rng in zip(stream, range(3_000))]
        manual = estimator.aggregate(reports)
        tolerance = 5 * estimator.expected_standard_deviation(len(stream))
        assert abs(vectorized[3] - manual[3]) <= tolerance

    def test_reproducible(self):
        stream = zipf_stream(1_000, 50, rng=2)
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=50)
        assert estimator.estimate_frequencies(stream, rng=7) == estimator.estimate_frequencies(stream, rng=7)


class TestHeavyHitters:
    def test_recovers_clear_heavy_hitters(self):
        stream = [0] * 6_000 + [1] * 3_000 + zipf_stream(6_000, 100, exponent=1.01, rng=3)
        estimator = LocalDPFrequencyEstimator(epsilon=2.0, universe_size=100)
        histogram = estimator.heavy_hitters(stream, phi=0.15, rng=4)
        assert 0 in histogram
        assert histogram.metadata.mechanism == "LocalDP-OUE"

    def test_phi_validated(self):
        estimator = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=10)
        with pytest.raises(ParameterError):
            estimator.heavy_hitters([1, 2], phi=1.5)

    def test_noise_floor_much_larger_than_central_model(self):
        # The sqrt(n) local-model error floor dwarfs the O(1/eps) noise of the
        # central-model PMG release for realistic n — the reason the paper's
        # central-model result matters when a trusted curator exists.
        from repro.core import PrivateMisraGries

        n = 100_000
        local = LocalDPFrequencyEstimator(epsilon=1.0, universe_size=1_000)
        central_noise = 2.0 / 1.0  # two Laplace(1/eps) layers
        assert local.expected_standard_deviation(n) > 100 * central_noise
