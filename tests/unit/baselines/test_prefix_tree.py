"""Unit tests for the prefix-tree frequency-oracle heavy hitters."""

import pytest

from repro.baselines import PrefixTreeHeavyHitters
from repro.exceptions import ParameterError
from repro.streams import zipf_stream
from repro.streams.generators import planted_heavy_hitters_stream


class TestConfiguration:
    def test_branching_validated(self):
        with pytest.raises(ParameterError):
            PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=100, branching=1)

    def test_num_levels(self):
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=1024)
        assert tree.num_levels == 10
        tree16 = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=4096, branching=16)
        assert tree16.num_levels == 3

    def test_budget_split_across_levels(self):
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=1024)
        assert tree.per_level_epsilon == pytest.approx(0.1)

    def test_noise_scale_grows_with_universe(self):
        small = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=256)
        large = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=2**20)
        assert large.per_level_noise_scale > small.per_level_noise_scale

    def test_pure_dp_uses_laplace_scale(self):
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=0.0, universe_size=256, depth=3)
        assert tree.per_level_noise_scale == pytest.approx(3 / (1.0 / 8))


class TestSearch:
    def test_recovers_planted_heavy_hitters(self):
        stream = planted_heavy_hitters_stream(40_000, 4_096, num_heavy=5,
                                              heavy_fraction=0.6, rng=0)
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=4_096,
                                      width=1_024, depth=4)
        histogram = tree.heavy_hitters(stream, phi=0.05, rng=1)
        assert set(range(5)) <= set(histogram.keys())

    def test_visits_far_fewer_nodes_than_universe(self):
        stream = zipf_stream(20_000, 4_096, exponent=1.5, rng=2)
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=4_096,
                                      width=512, depth=3)
        histogram = tree.heavy_hitters(stream, phi=0.02, rng=3)
        visited = int(histogram.metadata.notes.split("nodes visited=")[1])
        assert visited < 4_096 / 4

    def test_rejects_out_of_universe_elements(self):
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=16)
        with pytest.raises(ParameterError):
            tree.build([3, 99])

    def test_phi_validated(self):
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=16)
        with pytest.raises(ParameterError):
            tree.heavy_hitters([1, 2, 3], phi=0.0)

    def test_reproducible(self):
        stream = zipf_stream(5_000, 256, exponent=1.5, rng=4)
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=256,
                                      width=256, depth=3)
        first = tree.heavy_hitters(stream, phi=0.05, rng=9)
        second = tree.heavy_hitters(stream, phi=0.05, rng=9)
        assert first.as_dict() == second.as_dict()

    def test_branching_factor_16_works(self):
        stream = zipf_stream(10_000, 4_096, exponent=1.6, rng=5)
        tree = PrefixTreeHeavyHitters(epsilon=1.0, delta=1e-6, universe_size=4_096,
                                      width=512, depth=3, branching=16)
        histogram = tree.heavy_hitters(stream, phi=0.05, rng=6)
        assert 0 in histogram
