"""Unit tests for the stability histogram baseline."""

import pytest

from repro.baselines import StabilityHistogram
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


class TestConfiguration:
    def test_requires_delta_or_universe(self):
        with pytest.raises(ParameterError):
            StabilityHistogram(epsilon=1.0)

    def test_noise_scale(self):
        assert StabilityHistogram(epsilon=0.5, delta=1e-6).noise_scale == pytest.approx(2.0)
        assert StabilityHistogram(epsilon=0.5, delta=1e-6, sensitivity=3.0).noise_scale == pytest.approx(6.0)

    def test_sensitivity_validation(self):
        with pytest.raises(ParameterError):
            StabilityHistogram(epsilon=1.0, delta=1e-6, sensitivity=0.0)


class TestThresholdedVariant:
    def test_release_thresholds(self):
        stream = zipf_stream(20_000, 5_000, exponent=1.1, rng=0)
        mechanism = StabilityHistogram(epsilon=1.0, delta=1e-6)
        histogram = mechanism.run(stream, rng=1)
        assert all(value >= mechanism.threshold for value in histogram.counts.values())

    def test_accuracy_on_heavy_elements(self):
        stream = zipf_stream(50_000, 2_000, exponent=1.4, rng=2)
        truth = ExactCounter.from_stream(stream)
        mechanism = StabilityHistogram(epsilon=1.0, delta=1e-6)
        histogram = mechanism.run(stream, rng=3)
        for element, exact in truth.top(10):
            assert abs(histogram.estimate(element) - exact) < 60

    def test_zero_counts_never_released(self):
        mechanism = StabilityHistogram(epsilon=1.0, delta=1e-6)
        histogram = mechanism.release({"a": 0.0, "b": 5_000.0}, rng=0)
        assert "a" not in histogram

    def test_accepts_plain_mapping_with_length(self):
        mechanism = StabilityHistogram(epsilon=1.0, delta=1e-6)
        histogram = mechanism.release({"a": 100.0}, rng=0, stream_length=150)
        assert histogram.metadata.stream_length == 150


class TestPureVariant:
    def test_releases_whole_universe(self):
        stream = zipf_stream(5_000, 50, rng=4)
        mechanism = StabilityHistogram(epsilon=1.0, universe_size=50)
        histogram = mechanism.run(stream, rng=5)
        assert len(histogram) == 50
        assert histogram.metadata.delta == 0.0

    def test_rejects_out_of_universe_keys(self):
        mechanism = StabilityHistogram(epsilon=1.0, universe_size=10)
        with pytest.raises(ParameterError):
            mechanism.release({42: 1.0})

    def test_expected_error_formulas(self):
        thresholded = StabilityHistogram(epsilon=1.0, delta=1e-6)
        pure = StabilityHistogram(epsilon=1.0, universe_size=1_000)
        assert thresholded.expected_max_error() > 0
        assert pure.expected_max_error() > 0
