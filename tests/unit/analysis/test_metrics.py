"""Unit tests for the error metrics."""

import pytest

from repro.analysis import (
    heavy_hitter_scores,
    max_error,
    mean_absolute_error,
    mean_squared_error,
    summarize_errors,
)
from repro.core.results import PrivateHistogram, ReleaseMetadata
from repro.sketches import MisraGriesSketch


def make_histogram(counts):
    metadata = ReleaseMetadata(mechanism="test", epsilon=1.0, delta=1e-6, noise_scale=1.0,
                               threshold=0.0, sketch_size=4, stream_length=10)
    return PrivateHistogram(counts=counts, metadata=metadata)


class TestErrorMetrics:
    def test_max_error_with_mapping(self):
        assert max_error({"a": 8.0}, {"a": 10.0, "b": 3.0}) == pytest.approx(3.0)

    def test_max_error_with_histogram(self):
        histogram = make_histogram({"a": 8.0})
        assert max_error(histogram, {"a": 10.0}) == pytest.approx(2.0)

    def test_max_error_with_sketch(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 1, 2])
        assert max_error(sketch, {1: 2.0, 2: 1.0}) == 0.0

    def test_mean_absolute_error(self):
        estimates = {"a": 8.0, "b": 1.0}
        truth = {"a": 10.0, "b": 3.0}
        assert mean_absolute_error(estimates, truth) == pytest.approx(2.0)

    def test_mean_squared_error(self):
        estimates = {"a": 8.0}
        truth = {"a": 10.0, "b": 3.0}
        assert mean_squared_error(estimates, truth) == pytest.approx((4.0 + 9.0) / 2.0)

    def test_universe_restriction(self):
        estimates = {"a": 8.0}
        truth = {"a": 10.0, "b": 3.0}
        assert max_error(estimates, truth, universe=["a"]) == pytest.approx(2.0)

    def test_empty_inputs(self):
        assert max_error({}, {}) == 0.0
        assert mean_absolute_error({}, {}) == 0.0

    def test_summarize(self):
        summary = summarize_errors({"a": 8.0}, {"a": 10.0, "b": 3.0})
        assert summary.max_error == pytest.approx(3.0)
        assert summary.released_keys == 1
        assert summary.as_dict()["mean_squared_error"] == pytest.approx(6.5)


class TestHeavyHitterScores:
    def test_perfect(self):
        scores = heavy_hitter_scores({1, 2}, {1, 2})
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_partial(self):
        scores = heavy_hitter_scores({1, 2, 3, 4}, {1, 2})
        assert scores["precision"] == pytest.approx(0.5)
        assert scores["recall"] == pytest.approx(1.0)
        assert scores["f1"] == pytest.approx(2 / 3)

    def test_disjoint(self):
        scores = heavy_hitter_scores({3}, {1})
        assert scores["f1"] == 0.0

    def test_both_empty(self):
        assert heavy_hitter_scores([], [])["f1"] == 1.0

    def test_empty_prediction(self):
        scores = heavy_hitter_scores([], {1})
        assert scores["recall"] == 0.0
