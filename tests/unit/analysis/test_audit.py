"""Unit tests for the Monte-Carlo privacy audit."""

import pytest

from repro.analysis import audit_mechanism
from repro.baselines import BohlerKerschbaumMG
from repro.core import PrivateMisraGries
from repro.core.results import PrivateHistogram, ReleaseMetadata


class TestAuditMechanics:
    def test_identical_distributions_not_flagged(self):
        # A mechanism that ignores its input can never violate privacy.
        def constant_mechanism(stream, rng):
            metadata = ReleaseMetadata(mechanism="const", epsilon=1.0, delta=0.0,
                                       noise_scale=0.0, threshold=0.0, sketch_size=1,
                                       stream_length=len(stream))
            return PrivateHistogram(counts={"a": 1.0}, metadata=metadata)

        result = audit_mechanism(constant_mechanism, [1, 2, 3], [1, 2],
                                 claimed_epsilon=0.5, claimed_delta=1e-6,
                                 trials=200, rng=0)
        assert not result.violated
        assert result.estimated_epsilon_lower_bound == 0.0

    def test_non_private_mechanism_flagged(self):
        # Releasing the exact count of element 1 with no noise is a blatant
        # violation: the two outputs are deterministic and different.
        def exact_mechanism(stream, rng):
            metadata = ReleaseMetadata(mechanism="exact", epsilon=0.1, delta=0.0,
                                       noise_scale=0.0, threshold=0.0, sketch_size=1,
                                       stream_length=len(stream))
            count = float(sum(1 for x in stream if x == 1))
            return PrivateHistogram(counts={1: count}, metadata=metadata)

        result = audit_mechanism(exact_mechanism, [1, 1, 1, 2], [1, 1, 2],
                                 claimed_epsilon=0.1, claimed_delta=1e-6,
                                 trials=300, rng=1)
        assert result.violated
        assert result.estimated_epsilon_lower_bound > 0.1

    def test_result_as_dict(self):
        def constant_mechanism(stream, rng):
            metadata = ReleaseMetadata(mechanism="const", epsilon=1.0, delta=0.0,
                                       noise_scale=0.0, threshold=0.0, sketch_size=1,
                                       stream_length=len(stream))
            return PrivateHistogram(counts={}, metadata=metadata)

        result = audit_mechanism(constant_mechanism, [1], [], 1.0, 1e-6, trials=50, rng=2)
        record = result.as_dict()
        assert record["trials"] == 50
        assert "violated" in record


@pytest.mark.slow
class TestAuditOnRealMechanisms:
    """End-to-end audits; slower, but they demonstrate the paper's point."""

    # The worst case for counter-scaled noise: a stream whose deletion flips
    # the decrement branch so that *all* k counters shift by one.
    K = 8

    @staticmethod
    def _worst_case_pair(k):
        # Stream: k distinct elements, then one extra element that triggers
        # the decrement-all branch.  Removing the extra element leaves all
        # counters one higher.
        base = [f"e{i}" for i in range(k)] * 30
        stream = base + ["trigger"]
        neighbour = base
        return stream, neighbour

    def test_pmg_stays_within_budget(self):
        stream, neighbour = self._worst_case_pair(self.K)
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-3)

        def run(data, rng):
            return mechanism.run(data, k=self.K, rng=rng)

        result = audit_mechanism(run, stream, neighbour, claimed_epsilon=1.0,
                                 claimed_delta=1e-3, trials=2000, rng=3)
        assert not result.violated

    def test_bk_as_published_violates_much_smaller_epsilon(self):
        # The published Böhler-Kerschbaum noise (scale 1/eps) cannot hide a
        # shift of 1 in all k counters within a small epsilon budget.  We
        # audit against the much smaller epsilon it would need to satisfy for
        # the shifted representation and expect a clear violation.
        stream, neighbour = self._worst_case_pair(self.K)
        mechanism = BohlerKerschbaumMG(epsilon=1.0, delta=1e-3, k=self.K, as_published=True)

        def run(data, rng):
            return mechanism.run(data, rng=rng)

        result = audit_mechanism(run, stream, neighbour, claimed_epsilon=1.0,
                                 claimed_delta=1e-3, trials=2000, rng=4)
        assert result.violated
        assert "sum_ge" in result.worst_event or "count" in result.worst_event
