"""Unit tests for the plain-text reporting helpers."""

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"
        assert "empty" in format_table([], title="empty")

    def test_header_and_alignment(self):
        rows = [{"k": 16, "error": 1.5}, {"k": 256, "error": 0.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("k")
        assert "error" in lines[0]
        assert len(lines) == 4  # header, separator, two rows

    def test_title_rendered(self):
        text = format_table([{"a": 1}], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_values_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.000123456}], precision=3)
        assert "e-04" in text or "0.000123" in text

    def test_large_numbers_scientific(self):
        text = format_table([{"x": 1234567.0}])
        assert "e+06" in text


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series("k", "error", [(16, 1.0), (32, 0.5)], title="Figure 1")
        lines = text.splitlines()
        assert lines[0] == "Figure 1"
        assert "k" in lines[2] and "error" in lines[2]
        assert len(lines) == 6
