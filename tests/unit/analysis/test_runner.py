"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.analysis import ExperimentRunner, SweepSpec
from repro.exceptions import ParameterError


class TestSweepSpec:
    def test_combinations_cartesian_product(self):
        sweep = SweepSpec({"k": [1, 2], "epsilon": [0.5, 1.0, 2.0]})
        combos = sweep.combinations()
        assert len(combos) == 6
        assert {"k": 2, "epsilon": 0.5} in combos

    def test_single_parameter(self):
        assert SweepSpec({"k": [4]}).combinations() == [{"k": 4}]


class TestExperimentRunner:
    def test_metrics_averaged(self):
        def trial(rng, k):
            return {"value": float(k) * 2}

        runner = ExperimentRunner(repetitions=3, rng=0)
        results = runner.run(trial, SweepSpec({"k": [1, 5]}))
        assert results[0].metrics["value"] == pytest.approx(2.0)
        assert results[1].metrics["value"] == pytest.approx(10.0)
        assert results[0].repetitions == 3

    def test_max_metrics_take_maximum(self):
        calls = iter(range(100))

        def trial(rng, k):
            return {"error_max": float(next(calls))}

        runner = ExperimentRunner(repetitions=4, rng=0)
        result = runner.run_single(trial, {"k": 1})
        assert result.metrics["error_max"] == 3.0

    def test_rngs_independent_across_repetitions(self):
        seen = []

        def trial(rng, k):
            seen.append(float(rng.random()))
            return {"value": 0.0}

        ExperimentRunner(repetitions=5, rng=1).run_single(trial, {"k": 1})
        assert len(set(seen)) == 5

    def test_reproducible_given_runner_seed(self):
        def trial(rng, k):
            return {"value": float(rng.random())}

        first = ExperimentRunner(repetitions=3, rng=9).run_single(trial, {"k": 1})
        second = ExperimentRunner(repetitions=3, rng=9).run_single(trial, {"k": 1})
        assert first.metrics == second.metrics

    def test_row_merges_parameters_and_metrics(self):
        def trial(rng, k):
            return {"value": 1.0}

        result = ExperimentRunner(repetitions=2, rng=0).run_single(trial, {"k": 7})
        row = result.row()
        assert row["k"] == 7
        assert row["value"] == 1.0
        assert "seconds" in row

    def test_invalid_repetitions(self):
        with pytest.raises(ParameterError):
            ExperimentRunner(repetitions=0)


def _pickleable_trial(rng, k):
    return {"value": float(rng.random()) * k}


class TestExperimentRunnerWorkers:
    def test_workers_validated(self):
        with pytest.raises(ParameterError):
            ExperimentRunner(repetitions=2, workers=0)
        with pytest.raises(ParameterError):
            ExperimentRunner(repetitions=2, workers=-3)

    def test_workers_one_runs_in_process(self):
        results = ExperimentRunner(repetitions=2, rng=0, workers=1).run(
            _pickleable_trial, SweepSpec({"k": [1, 2]}))
        assert len(results) == 2

    def test_parallel_matches_sequential(self):
        sweep = SweepSpec({"k": [1, 2, 3]})
        sequential = ExperimentRunner(repetitions=3, rng=7).run(_pickleable_trial, sweep)
        parallel = ExperimentRunner(repetitions=3, rng=7, workers=2).run(
            _pickleable_trial, sweep)
        assert [r.metrics for r in sequential] == [r.metrics for r in parallel]
        assert [r.parameters for r in sequential] == [r.parameters for r in parallel]
