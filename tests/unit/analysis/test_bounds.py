"""Unit tests for the executable theoretical bounds."""

import pytest

from repro.analysis import (
    chan_error_bound,
    mg_error_bound,
    pamg_release_error_bound,
    pmg_error_bound,
    pmg_mse_bound,
    pure_dp_error_bound,
)
from repro.analysis.bounds import (
    balcer_vadhan_lower_bound,
    chan_thresholded_error_bound,
    pmg_noise_error_bound,
)


class TestMgBound:
    def test_formula(self):
        assert mg_error_bound(1_000, 9) == pytest.approx(100.0)

    def test_decreases_with_k(self):
        assert mg_error_bound(1_000, 99) < mg_error_bound(1_000, 9)


class TestPmgBounds:
    def test_total_bound_dominates_noise_bound(self):
        total = pmg_error_bound(10_000, 64, 1.0, 1e-6)
        noise_only = pmg_noise_error_bound(64, 1.0, 1e-6)
        assert total == pytest.approx(noise_only + 10_000 / 65)

    def test_noise_bound_independent_of_stream_length(self):
        assert pmg_noise_error_bound(64, 1.0, 1e-6) == pmg_noise_error_bound(64, 1.0, 1e-6)

    def test_noise_bound_grows_slowly_with_k(self):
        import math

        small = pmg_noise_error_bound(16, 1.0, 1e-6)
        large = pmg_noise_error_bound(1024, 1.0, 1e-6)
        assert large - small == pytest.approx(2.0 * math.log(1025 / 17))

    def test_mse_bound_positive_and_grows_with_n(self):
        assert pmg_mse_bound(1_000, 64, 1.0, 1e-6) < pmg_mse_bound(100_000, 64, 1.0, 1e-6)


class TestBaselineBounds:
    def test_chan_bound_grows_linearly_with_k(self):
        small = chan_error_bound(0, 8, 1.0, 10_000)
        large = chan_error_bound(0, 800, 1.0, 10_000)
        assert large == pytest.approx(100 * small)

    def test_chan_thresholded_also_linear_in_k(self):
        small = chan_thresholded_error_bound(0, 8, 1.0, 1e-6)
        large = chan_thresholded_error_bound(0, 512, 1.0, 1e-6)
        assert large > 20 * small

    def test_pure_dp_bound_much_smaller_than_chan_for_large_k(self):
        n, d, eps = 100_000, 100_000, 1.0
        k = 512
        assert pure_dp_error_bound(n, k, eps, d) < chan_error_bound(n, k, eps, d)

    def test_pmg_beats_chan_for_moderate_k(self):
        n, eps, delta = 100_000, 1.0, 1e-6
        for k in (16, 64, 256):
            assert (pmg_error_bound(n, k, eps, delta)
                    < chan_thresholded_error_bound(n, k, eps, delta))


class TestOtherBounds:
    def test_pamg_bound(self):
        assert pamg_release_error_bound(10_000, 99, sigma=5.0, tau=20.0) == pytest.approx(
            100.0 + 41.0)

    def test_balcer_vadhan_regimes(self):
        # For tiny delta the log(1/delta) branch dominates; for a huge
        # universe and moderate delta the log(d/k) branch can dominate.
        low_delta = balcer_vadhan_lower_bound(1_000, 10, 1.0, 1e-300, 10**9)
        assert low_delta == pytest.approx(min(float(10**9),
                                              __import__("math").log(100) / 1.0))
        short_stream = balcer_vadhan_lower_bound(1_000, 10, 1.0, 1e-6, 3)
        assert short_stream == pytest.approx(3.0)
