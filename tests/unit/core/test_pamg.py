"""Unit tests for Algorithm 4 (Privacy-Aware Misra-Gries)."""

import pytest

from repro.core import PrivacyAwareMisraGries
from repro.exceptions import ParameterError, StreamFormatError
from repro.sketches import ExactCounter
from repro.streams import distinct_user_stream, lemma25_streams
from repro.streams.user_streams import user_stream_total_length


class TestConstruction:
    def test_requires_positive_k(self):
        with pytest.raises(ParameterError):
            PrivacyAwareMisraGries(0)

    def test_empty_sketch(self):
        sketch = PrivacyAwareMisraGries(4)
        assert sketch.counters() == {}
        assert sketch.total_elements == 0


class TestProcessing:
    def test_counts_users_containing_element(self):
        sketch = PrivacyAwareMisraGries(8)
        sketch.process_user({1, 2})
        sketch.process_user({1, 3})
        sketch.process_user({4})
        assert sketch.estimate(1) == 2.0
        assert sketch.estimate(4) == 1.0
        assert sketch.stream_length == 3
        assert sketch.total_elements == 5

    def test_at_most_k_counters_after_each_user(self):
        stream = distinct_user_stream(500, 300, max_contribution=6, rng=0)
        sketch = PrivacyAwareMisraGries(16)
        for user in stream:
            sketch.process_user(user)
            assert len(sketch.counters()) <= 16

    def test_decrement_fires_at_most_once_per_user(self):
        stream = distinct_user_stream(300, 500, max_contribution=8, rng=1)
        sketch = PrivacyAwareMisraGries.from_stream(12, stream)
        assert sketch.decrement_rounds <= len(stream)

    def test_duplicate_elements_rejected(self):
        sketch = PrivacyAwareMisraGries(4)
        with pytest.raises(StreamFormatError):
            sketch.process_user([1, 1])

    def test_contribution_bound_enforced(self):
        sketch = PrivacyAwareMisraGries(8, max_contribution=2)
        with pytest.raises(StreamFormatError):
            sketch.process_user({1, 2, 3})

    def test_update_shim_processes_singletons(self):
        sketch = PrivacyAwareMisraGries(4)
        sketch.update(7)
        sketch.update(7)
        assert sketch.estimate(7) == 2.0

    def test_all_counters_positive(self):
        stream = distinct_user_stream(400, 200, max_contribution=5, rng=2)
        sketch = PrivacyAwareMisraGries.from_stream(10, stream)
        assert all(value > 0 for value in sketch.counters().values())


class TestGuarantees:
    def test_lemma26_error_bound(self):
        stream = distinct_user_stream(2_000, 300, max_contribution=6, exponent=1.3, rng=3)
        truth = ExactCounter().update_sets(stream)
        total = user_stream_total_length(stream)
        for k in (8, 32, 128):
            sketch = PrivacyAwareMisraGries.from_stream(k, stream)
            bound = total // (k + 1)
            for element in range(300):
                estimate = sketch.estimate(element)
                exact = truth.estimate(element)
                assert exact - bound - 1e-9 <= estimate <= exact + 1e-9

    def test_lemma27_neighbouring_structure_on_lemma25_instance(self):
        # On the exact instance that breaks the MG sketch, PAMG counters for
        # neighbouring streams differ by at most 1 everywhere.
        k, m = 8, 4
        stream, neighbour = lemma25_streams(k, m, tail_length=12)
        sketch = PrivacyAwareMisraGries.from_stream(k, stream)
        sketch_neighbour = PrivacyAwareMisraGries.from_stream(k, neighbour)
        counters = sketch.counters()
        counters_neighbour = sketch_neighbour.counters()
        keys = set(counters) | set(counters_neighbour)
        diffs = {key: counters.get(key, 0.0) - counters_neighbour.get(key, 0.0) for key in keys}
        assert all(abs(diff) <= 1.0 for diff in diffs.values())
        # Moreover all differences share a sign (condition of Lemma 27).
        signs = {d for d in diffs.values() if d != 0}
        assert signs <= {1.0} or signs <= {-1.0}

    def test_error_bound_helper(self):
        stream = [frozenset({i}) for i in range(100)]
        sketch = PrivacyAwareMisraGries.from_stream(9, stream)
        assert sketch.error_bound() == pytest.approx(10.0)

    def test_equivalent_to_mg_for_singleton_users(self):
        # With one element per user, PAMG gives the same estimates as the
        # (standard) Misra-Gries sketch on the flattened stream.
        from repro.sketches import StandardMisraGriesSketch
        from repro.streams import zipf_stream

        elements = zipf_stream(2_000, 80, exponent=1.2, rng=4)
        user_stream = [frozenset({x}) for x in elements]
        pamg = PrivacyAwareMisraGries.from_stream(16, user_stream)
        mg = StandardMisraGriesSketch.from_stream(16, elements)
        for element in range(80):
            assert pamg.estimate(element) == mg.estimate(element)

    def test_repr(self):
        assert "PrivacyAwareMisraGries" in repr(PrivacyAwareMisraGries(4))
