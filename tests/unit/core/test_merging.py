"""Unit tests for the Section 7 private merging strategies."""

import pytest

from repro.core import MergeStrategy, PrivateMergedRelease, merge_sketches
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import split_contiguous, zipf_stream


@pytest.fixture
def distributed_sketches():
    stream = zipf_stream(20_000, 500, exponent=1.3, rng=0)
    parts = split_contiguous(stream, 8)
    sketches = [MisraGriesSketch.from_stream(32, part) for part in parts]
    truth = ExactCounter.from_stream(stream).counters()
    return stream, sketches, truth


class TestMergeSketches:
    def test_reexport_matches_merge_many(self, distributed_sketches):
        _, sketches, _ = distributed_sketches
        merged = merge_sketches(sketches, 32)
        assert len(merged) <= 32

    def test_empty_input(self):
        assert merge_sketches([], 8) == {}


class TestPrivateMergedRelease:
    def test_strategy_coercion_from_string(self):
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=8, strategy="untrusted")
        assert release.strategy is MergeStrategy.UNTRUSTED

    def test_requires_sketches(self):
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=8)
        with pytest.raises(ParameterError):
            release.release([])

    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    def test_all_strategies_produce_histograms(self, distributed_sketches, strategy):
        stream, sketches, truth = distributed_sketches
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=32, strategy=strategy)
        histogram = release.release(sketches, rng=1)
        assert len(histogram) > 0
        assert histogram.metadata.stream_length == len(stream)

    @pytest.mark.parametrize("strategy", list(MergeStrategy))
    def test_reproducible(self, distributed_sketches, strategy):
        _, sketches, _ = distributed_sketches
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=32, strategy=strategy)
        assert (release.release(sketches, rng=5).as_dict()
                == release.release(sketches, rng=5).as_dict())

    def test_trusted_strategies_reasonably_accurate(self, distributed_sketches):
        stream, sketches, truth = distributed_sketches
        n, k = len(stream), 32
        for strategy in (MergeStrategy.TRUSTED_SUM, MergeStrategy.TRUSTED_MERGED):
            release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k, strategy=strategy)
            histogram = release.release(sketches, rng=2)
            # Error is dominated by the sketch term n/(k+1); allow noise slack.
            assert histogram.max_error_against(truth) <= n / (k + 1) + 600

    def test_heaviest_element_recovered_by_all_strategies(self, distributed_sketches):
        stream, sketches, truth = distributed_sketches
        heaviest = max(truth, key=truth.get)
        for strategy in MergeStrategy:
            release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=32, strategy=strategy)
            histogram = release.release(sketches, rng=3)
            assert heaviest in histogram

    def test_untrusted_error_grows_with_stream_count(self):
        # Error of the untrusted strategy scales with the number of sketches:
        # each per-stream release pays its own threshold, so moderately heavy
        # elements get dropped once the stream is split too finely.  Measure
        # the summed error over the ten heaviest elements.
        stream = zipf_stream(40_000, 200, exponent=1.5, rng=4)
        counter = ExactCounter.from_stream(stream)
        truth = counter.counters()
        top_elements = [element for element, _ in counter.top(10)]
        k = 32

        def top_error(strategy, num_parts, seed):
            parts = split_contiguous(stream, num_parts)
            sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
            release = PrivateMergedRelease(epsilon=0.5, delta=1e-6, k=k, strategy=strategy)
            histogram = release.release(sketches, rng=seed)
            return sum(abs(histogram.estimate(element) - truth[element])
                       for element in top_elements)

        untrusted_few = sum(top_error(MergeStrategy.UNTRUSTED, 2, seed) for seed in range(3))
        untrusted_many = sum(top_error(MergeStrategy.UNTRUSTED, 32, seed) for seed in range(3))
        trusted_few = sum(top_error(MergeStrategy.TRUSTED_SUM, 2, seed) for seed in range(3))
        trusted_many = sum(top_error(MergeStrategy.TRUSTED_SUM, 32, seed) for seed in range(3))
        assert untrusted_many > 1.5 * untrusted_few
        # The trusted aggregator's error does not blow up the same way.
        assert trusted_many < 1.5 * trusted_few + 100

    def test_metadata_mentions_strategy(self, distributed_sketches):
        _, sketches, _ = distributed_sketches
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=32,
                                       strategy=MergeStrategy.TRUSTED_SUM)
        histogram = release.release(sketches, rng=0)
        assert "TrustedSum" in histogram.metadata.mechanism

    def test_accepts_plain_counter_dicts(self):
        counters = [{1: 50.0, 2: 20.0}, {1: 30.0, 3: 10.0}]
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=4)
        histogram = release.release(counters, rng=0, total_stream_length=110)
        assert histogram.metadata.stream_length == 110


def test_sketch_streams_rejects_invalid_workers():
    import pytest
    from repro.core import sketch_streams
    from repro.exceptions import ParameterError
    with pytest.raises(ParameterError):
        sketch_streams([[1, 2]], 4, workers=0)
    with pytest.raises(ParameterError):
        sketch_streams([[1, 2]], 4, workers=-3)
