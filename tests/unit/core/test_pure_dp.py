"""Unit tests for the Section 6 pure-DP and approximate-DP releases."""

import pytest

from repro.core import PureDPMisraGries
from repro.core.pure_dp import ApproximateDPReducedRelease
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import zipf_stream


class TestPureDPMisraGries:
    def test_parameters_validated(self):
        with pytest.raises(Exception):
            PureDPMisraGries(epsilon=0.0, universe_size=100)
        with pytest.raises(Exception):
            PureDPMisraGries(epsilon=1.0, universe_size=0)

    def test_noise_scale_is_two_over_epsilon(self):
        assert PureDPMisraGries(epsilon=0.5, universe_size=10).noise_scale == pytest.approx(4.0)

    def test_release_keeps_top_k(self):
        stream = zipf_stream(5_000, 200, exponent=1.3, rng=0)
        mechanism = PureDPMisraGries(epsilon=1.0, universe_size=200)
        histogram = mechanism.run(stream, k=16, rng=1)
        assert len(histogram) == 16

    def test_top_k_override(self):
        stream = zipf_stream(2_000, 100, rng=2)
        mechanism = PureDPMisraGries(epsilon=1.0, universe_size=100, top_k=5)
        histogram = mechanism.run(stream, k=16, rng=3)
        assert len(histogram) == 5

    def test_reproducible(self):
        stream = zipf_stream(1_000, 50, rng=4)
        mechanism = PureDPMisraGries(epsilon=1.0, universe_size=50)
        assert mechanism.run(stream, 8, rng=9).as_dict() == mechanism.run(stream, 8, rng=9).as_dict()

    def test_rejects_keys_outside_universe(self):
        mechanism = PureDPMisraGries(epsilon=1.0, universe_size=10)
        with pytest.raises(ParameterError):
            mechanism.release({"a": 5.0}, k=4, already_reduced=True)
        with pytest.raises(ParameterError):
            mechanism.release({15: 5.0}, k=4, already_reduced=True)

    def test_requires_k_for_mapping(self):
        mechanism = PureDPMisraGries(epsilon=1.0, universe_size=10)
        with pytest.raises(ParameterError):
            mechanism.release({1: 5.0})

    def test_heavy_hitters_recovered_with_reasonable_noise(self):
        stream = zipf_stream(50_000, 500, exponent=1.5, rng=5)
        truth = ExactCounter.from_stream(stream)
        mechanism = PureDPMisraGries(epsilon=1.0, universe_size=500)
        histogram = mechanism.run(stream, k=32, rng=6)
        # The top 3 true elements must be released and estimated within the bound.
        bound = mechanism.error_bound(len(stream), 32, beta=0.01)
        for element, exact in truth.top(3):
            assert element in histogram
            assert abs(histogram.estimate(element) - exact) <= bound

    def test_metadata(self):
        stream = zipf_stream(500, 30, rng=7)
        mechanism = PureDPMisraGries(epsilon=2.0, universe_size=30)
        histogram = mechanism.run(stream, 8, rng=8)
        assert histogram.metadata.mechanism == "PureDP-MG"
        assert histogram.metadata.delta == 0.0


class TestApproximateDPReducedRelease:
    def test_threshold_formula(self):
        import math

        release = ApproximateDPReducedRelease(epsilon=1.0, delta=1e-6)
        assert release.threshold == pytest.approx(4.0 + 2.0 * math.log(1e6))

    def test_release_runs_and_thresholds(self):
        stream = zipf_stream(20_000, 300, exponent=1.3, rng=0)
        release = ApproximateDPReducedRelease(epsilon=1.0, delta=1e-6)
        histogram = release.run(stream, k=32, rng=1)
        assert all(value >= release.threshold for value in histogram.counts.values())
        assert histogram.metadata.mechanism == "ApproxDP-ReducedMG"

    def test_released_keys_come_from_sketch(self):
        stream = zipf_stream(10_000, 100, exponent=1.4, rng=2)
        sketch = MisraGriesSketch.from_stream(16, stream)
        release = ApproximateDPReducedRelease(epsilon=1.0, delta=1e-6)
        histogram = release.release(sketch, rng=3)
        assert set(histogram.keys()) <= set(sketch.counters().keys())

    def test_requires_k_for_mapping(self):
        release = ApproximateDPReducedRelease(epsilon=1.0, delta=1e-6)
        with pytest.raises(ParameterError):
            release.release({1: 10.0})

    def test_probabilistic_rounding_unbiased(self):
        import numpy as np

        release = ApproximateDPReducedRelease(epsilon=1.0, delta=1e-6)
        rng = np.random.default_rng(0)
        rounded = [release._probabilistic_round(0.5, rng) for _ in range(20_000)]
        assert np.mean(rounded) == pytest.approx(0.5, abs=0.05)
        assert set(rounded) <= {0.0, 2.0}

    def test_rounding_leaves_large_values(self):
        import numpy as np

        release = ApproximateDPReducedRelease(epsilon=1.0, delta=1e-6)
        rng = np.random.default_rng(0)
        assert release._probabilistic_round(7.3, rng) == 7.3
