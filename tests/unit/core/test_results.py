"""Unit tests for the PrivateHistogram result type."""

import pytest

from repro.core.results import PrivateHistogram, ReleaseMetadata


def make_histogram(counts):
    metadata = ReleaseMetadata(mechanism="test", epsilon=1.0, delta=1e-6,
                               noise_scale=1.0, threshold=5.0, sketch_size=4,
                               stream_length=100)
    return PrivateHistogram(counts=counts, metadata=metadata)


class TestFrequencyOracle:
    def test_estimate_released_key(self):
        histogram = make_histogram({"a": 10.0})
        assert histogram.estimate("a") == 10.0

    def test_estimate_missing_key_is_zero(self):
        histogram = make_histogram({"a": 10.0})
        assert histogram.estimate("zzz") == 0.0

    def test_contains_len_iter(self):
        histogram = make_histogram({"a": 1.0, "b": 2.0})
        assert "a" in histogram and "c" not in histogram
        assert len(histogram) == 2
        assert set(iter(histogram)) == {"a", "b"}

    def test_keys_items_as_dict(self):
        histogram = make_histogram({"a": 1.0})
        assert histogram.keys() == ["a"]
        assert histogram.items() == [("a", 1.0)]
        assert histogram.as_dict() == {"a": 1.0}

    def test_as_dict_returns_copy(self):
        histogram = make_histogram({"a": 1.0})
        histogram.as_dict()["a"] = 99.0
        assert histogram.estimate("a") == 1.0


class TestQueries:
    def test_top(self):
        histogram = make_histogram({"a": 3.0, "b": 9.0, "c": 6.0})
        assert histogram.top(2) == [("b", 9.0), ("c", 6.0)]

    def test_heavy_hitters(self):
        histogram = make_histogram({"a": 3.0, "b": 9.0})
        assert histogram.heavy_hitters(5.0) == {"b": 9.0}

    def test_max_error_against_union_of_keys(self):
        histogram = make_histogram({"a": 8.0})
        truth = {"a": 10.0, "b": 7.0}
        # Error on "a" is 2, error on missing "b" is its full frequency 7.
        assert histogram.max_error_against(truth) == pytest.approx(7.0)

    def test_max_error_with_explicit_universe(self):
        histogram = make_histogram({"a": 8.0})
        truth = {"a": 10.0, "b": 7.0}
        assert histogram.max_error_against(truth, universe=["a"]) == pytest.approx(2.0)

    def test_max_error_empty(self):
        assert make_histogram({}).max_error_against({}) == 0.0


class TestMetadata:
    def test_metadata_round_trip(self):
        histogram = make_histogram({"a": 1.0})
        record = histogram.metadata.as_dict()
        assert record["mechanism"] == "test"
        assert record["epsilon"] == 1.0
        assert record["threshold"] == 5.0

    def test_repr_mentions_mechanism(self):
        assert "test" in repr(make_histogram({"a": 1.0}))
