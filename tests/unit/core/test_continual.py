"""Unit tests for the continual-observation monitor."""

import pytest

from repro.core import ContinualHeavyHitters
from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


class TestConfiguration:
    def test_strategy_validated(self):
        with pytest.raises(ParameterError):
            ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=10, strategy="weekly")

    def test_blocks_strategy_uses_full_budget_per_release(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=10,
                                        strategy="blocks")
        assert monitor.per_release_budget() == {"epsilon": 1.0, "delta": 1e-6}
        assert monitor.levels == 1

    def test_tree_strategy_splits_budget_over_levels(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=10,
                                        strategy="binary_tree", max_blocks=16)
        assert monitor.levels == 5  # ceil(log2(16)) + 1
        budget = monitor.per_release_budget()
        assert budget["epsilon"] == pytest.approx(0.2)
        assert budget["delta"] == pytest.approx(2e-7)


class TestBlockProcessing:
    def test_releases_once_per_block(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=5,
                                        strategy="blocks", rng=0)
        released = []
        for index in range(23):
            result = monitor.process(index % 3)
            if result:
                released.extend(result)
        assert monitor.closed_blocks == 4
        assert len(released) == 4
        assert monitor.elements_processed == 23

    def test_flush_closes_partial_block(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=100,
                                        strategy="blocks", rng=0)
        monitor.process_stream([1, 2, 3])
        assert monitor.closed_blocks == 0
        assert monitor.flush() is not None
        assert monitor.closed_blocks == 1
        assert monitor.flush() is None

    def test_max_blocks_enforced(self):
        monitor = ContinualHeavyHitters(k=4, epsilon=1.0, delta=1e-6, block_size=1,
                                        strategy="blocks", max_blocks=2, rng=0)
        monitor.process(1)
        monitor.process(2)
        with pytest.raises(SketchStateError):
            monitor.process(3)

    def test_releases_are_private_histograms_with_per_release_budget(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=0.5, delta=1e-6, block_size=4,
                                        strategy="binary_tree", max_blocks=8, rng=0)
        monitor.process_stream([1, 1, 2, 3] * 4)
        assert monitor.releases
        for histogram in monitor.releases:
            assert histogram.metadata.epsilon == pytest.approx(0.5 / monitor.levels)


class TestTreeStructure:
    def test_number_of_releases_matches_dyadic_nodes(self):
        # 8 blocks of a binary tree release 8 leaves + 4 + 2 + 1 = 15 nodes.
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=2,
                                        strategy="binary_tree", max_blocks=8, rng=0)
        monitor.process_stream(range(16))
        assert monitor.closed_blocks == 8
        assert len(monitor.releases) == 15

    def test_query_uses_logarithmically_many_releases(self):
        stream = zipf_stream(6_400, 100, exponent=1.3, rng=1)
        blocks = ContinualHeavyHitters(k=32, epsilon=1.0, delta=1e-6, block_size=100,
                                       strategy="blocks", rng=2).process_stream(stream)
        tree = ContinualHeavyHitters(k=32, epsilon=1.0, delta=1e-6, block_size=100,
                                     strategy="binary_tree", max_blocks=64,
                                     rng=3).process_stream(stream)
        assert blocks.releases_per_query() == 64
        assert tree.releases_per_query() <= 7  # popcount/covering of 64 blocks

    def test_partial_prefix_covering(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=1,
                                        strategy="binary_tree", max_blocks=8, rng=0)
        monitor.process_stream(range(6))
        # 6 = 4 + 2 blocks -> one level-2 node and one level-1 node.
        assert monitor.releases_per_query() == 2


class TestAccuracy:
    def test_heavy_element_tracked_through_time(self):
        stream = zipf_stream(8_000, 200, exponent=1.5, rng=4)
        truth = ExactCounter.from_stream(stream)
        monitor = ContinualHeavyHitters(k=64, epsilon=1.0, delta=1e-6, block_size=500,
                                        strategy="binary_tree", max_blocks=16, rng=5)
        monitor.process_stream(stream)
        top_element, top_count = truth.top(1)[0]
        estimate = monitor.estimate(top_element)
        assert abs(estimate - top_count) <= 0.25 * top_count

    def test_histogram_and_heavy_hitters_consistent(self):
        stream = zipf_stream(2_000, 50, exponent=1.4, rng=6)
        monitor = ContinualHeavyHitters(k=32, epsilon=1.0, delta=1e-6, block_size=250,
                                        strategy="blocks", rng=7)
        monitor.process_stream(stream)
        histogram = monitor.histogram()
        heavy = monitor.heavy_hitters(100.0)
        assert all(histogram[key] >= 100.0 for key in heavy)
        assert set(heavy) <= set(histogram)

    def test_blocks_noise_grows_with_number_of_blocks(self):
        # With more blocks each released histogram pays its own threshold, so
        # a fixed moderately-heavy element eventually disappears from some
        # blocks and its continual estimate degrades.
        stream = zipf_stream(8_000, 300, exponent=1.2, rng=8)
        truth = ExactCounter.from_stream(stream)
        element = truth.top(12)[-1][0]

        def error_with_block_size(block_size, seed):
            monitor = ContinualHeavyHitters(k=64, epsilon=1.0, delta=1e-6,
                                            block_size=block_size,
                                            strategy="blocks", rng=seed)
            monitor.process_stream(stream)
            return abs(monitor.estimate(element) - truth.estimate(element))

        few_blocks = sum(error_with_block_size(4_000, seed) for seed in range(3))
        many_blocks = sum(error_with_block_size(250, seed) for seed in range(3))
        assert many_blocks >= few_blocks


class TestContinualConfig:
    def test_config_validates_eagerly(self):
        from repro.core import ContinualConfig

        with pytest.raises(ParameterError):
            ContinualConfig(k=8, epsilon=1.0, delta=1e-6, block_size=0)
        with pytest.raises(ParameterError):
            ContinualConfig(k=8, epsilon=1.0, delta=1e-6, block_size=10,
                            strategy="weekly")
        with pytest.raises(ParameterError):
            ContinualConfig(k=8, epsilon=-1.0, delta=1e-6, block_size=10)
        with pytest.raises(ParameterError):
            ContinualConfig(k=8, epsilon=1.0, delta=1e-6, block_size=10,
                            max_blocks=-4)

    def test_build_produces_equivalent_monitor(self):
        from repro.core import ContinualConfig

        config = ContinualConfig(k=8, epsilon=1.0, delta=1e-6, block_size=50,
                                 strategy="binary_tree", max_blocks=16)
        stream = zipf_stream(400, 60, rng=3)
        built = config.build(rng=11).process_stream(stream)
        direct = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6, block_size=50,
                                       strategy="binary_tree", max_blocks=16,
                                       rng=11).process_stream(stream)
        assert built.histogram() == direct.histogram()


class TestAsHistogram:
    def test_as_histogram_matches_prefix_query(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6,
                                        block_size=100, rng=5)
        monitor.process_stream(zipf_stream(650, 40, rng=4))
        monitor.flush()
        histogram = monitor.as_histogram()
        assert histogram.as_dict() == monitor.histogram()
        assert histogram.metadata.mechanism == "ContinualMG"
        assert histogram.metadata.stream_length == 650
        assert "blocks=7" in histogram.metadata.notes
        assert "strategy=blocks" in histogram.metadata.notes

    def test_as_histogram_reports_per_release_budget(self):
        monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6,
                                        block_size=10, strategy="binary_tree",
                                        max_blocks=16, rng=5)
        monitor.process_stream(zipf_stream(100, 20, rng=6))
        histogram = monitor.as_histogram()
        assert histogram.metadata.epsilon == 1.0  # whole-timeline budget
        assert "eps=0.2" in histogram.metadata.notes


class TestRegistryIntegration:
    def test_pipeline_release_matches_direct_monitor(self):
        from repro.api import Pipeline

        stream = zipf_stream(500, 40, rng=8)
        via_pipeline = Pipeline(mechanism="continual", k=8, epsilon=1.0,
                                delta=1e-6, block_size=100).fit(stream).release(rng=9)
        direct = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6,
                                       block_size=100, rng=9)
        direct.process_stream(stream)
        direct.flush()
        assert via_pipeline.as_dict() == direct.as_histogram().as_dict()

    def test_registry_validates_epoch_parameters(self):
        from repro.api import make_mechanism

        with pytest.raises(ParameterError):
            make_mechanism({"name": "continual", "block_size": -5},
                           epsilon=1.0, delta=1e-6, k=8)
        with pytest.raises(ParameterError):
            make_mechanism({"name": "continual", "strategy": "weekly"},
                           epsilon=1.0, delta=1e-6, k=8)
        with pytest.raises(ParameterError):
            make_mechanism({"name": "continual", "max_blocks": 0},
                           epsilon=1.0, delta=1e-6, k=8)
