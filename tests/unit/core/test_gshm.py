"""Unit tests for the Gaussian Sparse Histogram Mechanism."""

import numpy as np
import pytest

from repro.core import GaussianSparseHistogram, calibrate_gshm, gshm_delta
from repro.dp.thresholds import gshm_loose_parameters
from repro.exceptions import ParameterError


class TestGshmDelta:
    def test_decreases_with_sigma(self):
        deltas = [gshm_delta(sigma, tau=4.0 * sigma, epsilon=1.0, l=8)
                  for sigma in (1.0, 3.0, 10.0)]
        assert deltas[0] > deltas[1] > deltas[2]

    def test_decreases_with_tau(self):
        small = gshm_delta(5.0, tau=10.0, epsilon=1.0, l=8)
        large = gshm_delta(5.0, tau=40.0, epsilon=1.0, l=8)
        assert large <= small

    def test_increases_with_l(self):
        few = gshm_delta(5.0, tau=25.0, epsilon=1.0, l=2)
        many = gshm_delta(5.0, tau=25.0, epsilon=1.0, l=64)
        assert many >= few

    def test_within_unit_interval(self):
        value = gshm_delta(2.0, tau=4.0, epsilon=0.5, l=16)
        assert 0.0 <= value <= 1.0

    def test_loose_parameters_satisfy_exact_predicate(self):
        # Lemma 24's closed form must be valid according to Theorem 23.
        for epsilon in (0.1, 0.5, 0.9):
            for delta in (1e-6, 1e-8):
                for l in (4, 64):
                    sigma, tau = gshm_loose_parameters(epsilon, delta, l)
                    assert gshm_delta(sigma, tau, epsilon, l) <= delta * (1 + 1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            gshm_delta(0.0, 1.0, 1.0, 4)
        with pytest.raises(ParameterError):
            gshm_delta(1.0, -1.0, 1.0, 4)


class TestCalibration:
    def test_exact_no_larger_than_loose(self):
        for l in (4, 32, 256):
            sigma_loose, _ = calibrate_gshm(0.5, 1e-6, l, method="loose")
            sigma_exact, _ = calibrate_gshm(0.5, 1e-6, l, method="exact")
            assert sigma_exact <= sigma_loose * (1 + 1e-6)

    def test_exact_calibration_is_valid(self):
        for epsilon in (0.3, 1.0, 2.0):
            sigma, tau = calibrate_gshm(epsilon, 1e-6, 32, method="exact")
            assert gshm_delta(sigma, tau, epsilon, 32) <= 1e-6 * (1 + 1e-3)

    def test_sigma_grows_with_l(self):
        small, _ = calibrate_gshm(1.0, 1e-6, 4)
        large, _ = calibrate_gshm(1.0, 1e-6, 256)
        assert large > small

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            calibrate_gshm(1.0, 1e-6, 4, method="magic")


class TestMechanism:
    def test_release_thresholds_small_counts(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=16)
        _, tau = mechanism.parameters()
        counters = {"heavy": 100.0 * (1.0 + tau), "light": 1.0}
        histogram = mechanism.release(counters, rng=0)
        assert "heavy" in histogram
        assert "light" not in histogram
        assert all(value >= 1.0 + tau for value in histogram.counts.values())

    def test_zero_counters_never_released(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=8)
        histogram = mechanism.release({"zero": 0.0, "big": 10_000.0}, rng=1)
        assert "zero" not in histogram

    def test_empty_input(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=8)
        assert len(mechanism.release({}, rng=0)) == 0

    def test_reproducible(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=8)
        counters = {i: 1000.0 + i for i in range(8)}
        assert mechanism.release(counters, rng=3).as_dict() == mechanism.release(counters, rng=3).as_dict()

    def test_noise_magnitude_matches_sigma(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=16)
        sigma, _ = mechanism.parameters()
        counters = {i: 1e6 for i in range(500)}
        histogram = mechanism.release(counters, rng=4)
        errors = np.array([histogram.estimate(i) - 1e6 for i in range(500)])
        assert abs(np.std(errors) - sigma) / sigma < 0.15

    def test_error_bound_reported(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=16)
        _, tau = mechanism.parameters()
        assert mechanism.error_bound() == pytest.approx(1.0 + 2.0 * tau)

    def test_calibration_choice_recorded(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=8, calibration="loose")
        histogram = mechanism.release({"a": 1e5}, rng=0)
        assert "loose" in histogram.metadata.notes

    def test_invalid_calibration(self):
        with pytest.raises(ParameterError):
            GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=8, calibration="nope")
