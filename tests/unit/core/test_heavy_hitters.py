"""Unit tests for heavy-hitter queries."""

import pytest

from repro.core import private_heavy_hitters, true_heavy_hitters
from repro.core.heavy_hitters import heavy_hitters_from_histogram, rank_released
from repro.core.results import PrivateHistogram, ReleaseMetadata
from repro.exceptions import ParameterError
from repro.streams import zipf_stream
from repro.streams.generators import planted_heavy_hitters_stream


def make_histogram(counts, stream_length=1_000):
    metadata = ReleaseMetadata(mechanism="test", epsilon=1.0, delta=1e-6, noise_scale=1.0,
                               threshold=0.0, sketch_size=8, stream_length=stream_length)
    return PrivateHistogram(counts=counts, metadata=metadata)


class TestTrueHeavyHitters:
    def test_simple_stream(self):
        stream = [1] * 50 + [2] * 30 + list(range(10, 30))
        assert set(true_heavy_hitters(stream, phi=0.4)) == {1}
        assert set(true_heavy_hitters(stream, phi=0.25)) == {1, 2}

    def test_phi_validation(self):
        with pytest.raises(ParameterError):
            true_heavy_hitters([1, 2], phi=0.0)

    def test_all_below_threshold(self):
        assert true_heavy_hitters(list(range(100)), phi=0.5) == {}


class TestHistogramHeavyHitters:
    def test_cutoff_uses_metadata_length(self):
        histogram = make_histogram({"a": 300.0, "b": 50.0}, stream_length=1_000)
        assert set(heavy_hitters_from_histogram(histogram, phi=0.1)) == {"a"}

    def test_explicit_stream_length_overrides(self):
        histogram = make_histogram({"a": 300.0}, stream_length=1_000)
        assert heavy_hitters_from_histogram(histogram, phi=0.1, stream_length=10_000) == {}

    def test_slack_lowers_cutoff(self):
        histogram = make_histogram({"a": 95.0}, stream_length=1_000)
        assert heavy_hitters_from_histogram(histogram, phi=0.1) == {}
        assert set(heavy_hitters_from_histogram(histogram, phi=0.1, slack=10.0)) == {"a"}

    def test_rank_released(self):
        histogram = make_histogram({"a": 1.0, "b": 5.0})
        assert rank_released(histogram) == [("b", 5.0), ("a", 1.0)]


class TestEndToEnd:
    def test_planted_heavy_hitters_recovered(self):
        stream = planted_heavy_hitters_stream(50_000, 10_000, num_heavy=10,
                                              heavy_fraction=0.6, rng=0)
        truth = true_heavy_hitters(stream, phi=0.01)
        result = private_heavy_hitters(stream, k=64, epsilon=1.0, delta=1e-6, phi=0.01, rng=1)
        recovered = set(result) & set(truth)
        assert len(recovered) >= 0.8 * len(truth)

    def test_without_slack_more_conservative(self):
        stream = zipf_stream(20_000, 1_000, exponent=1.3, rng=2)
        with_slack = private_heavy_hitters(stream, 64, 1.0, 1e-6, 0.01, rng=3, use_error_slack=True)
        without_slack = private_heavy_hitters(stream, 64, 1.0, 1e-6, 0.01, rng=3, use_error_slack=False)
        assert set(without_slack) <= set(with_slack)

    def test_output_counts_are_noisy_estimates(self):
        stream = [1] * 1_000 + [2] * 10
        result = private_heavy_hitters(stream, k=8, epsilon=1.0, delta=1e-6, phi=0.5, rng=4)
        assert 1 in result
        assert abs(result[1] - 1_000) < 200
