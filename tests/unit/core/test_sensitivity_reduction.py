"""Unit tests for Algorithm 3 (sensitivity reduction)."""

import pytest

from repro.core import SensitivityReducedMG, reduce_sensitivity
from repro.dp.sensitivity import l1_distance, neighbouring_streams_by_deletion
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import mg_worst_case_stream, zipf_stream


class TestReduceSensitivity:
    def test_requires_k_for_plain_mapping(self):
        with pytest.raises(ParameterError):
            reduce_sensitivity({"a": 5.0})

    def test_offset_subtracted(self):
        counters = {"a": 10.0, "b": 4.0}
        k = 3
        gamma = 14.0 / 4.0
        reduced = reduce_sensitivity(counters, k)
        assert reduced["a"] == pytest.approx(10.0 - gamma)
        assert reduced["b"] == pytest.approx(4.0 - gamma)

    def test_non_positive_counts_removed(self):
        counters = {"a": 10.0, "b": 1.0}
        reduced = reduce_sensitivity(counters, 3)  # gamma = 11/4 = 2.75
        assert "b" not in reduced

    def test_accepts_sketch_object(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 1, 1, 2])
        reduced = reduce_sensitivity(sketch)
        assert set(reduced) <= {1, 2}

    def test_rejects_other_types(self):
        with pytest.raises(ParameterError):
            reduce_sensitivity([1, 2, 3], 4)

    def test_lemma15_error_bound(self):
        # Post-processed estimates stay within [f - n/(k+1), f].
        stream = zipf_stream(5_000, 150, exponent=1.2, rng=0)
        truth = ExactCounter.from_stream(stream)
        for k in (8, 32):
            sketch = MisraGriesSketch.from_stream(k, stream)
            reduced = reduce_sensitivity(sketch)
            bound = len(stream) / (k + 1)
            for element in range(150):
                estimate = reduced.get(element, 0.0)
                exact = truth.estimate(element)
                assert exact - bound - 1e-9 <= estimate <= exact + 1e-9

    def test_lemma15_on_worst_case_stream(self):
        k = 6
        stream = mg_worst_case_stream(k, repetitions=40)
        truth = ExactCounter.from_stream(stream)
        sketch = MisraGriesSketch.from_stream(k, stream)
        reduced = reduce_sensitivity(sketch)
        bound = len(stream) / (k + 1)
        for element in range(k + 1):
            estimate = reduced.get(element, 0.0)
            assert truth.estimate(element) - bound - 1e-9 <= estimate <= truth.estimate(element) + 1e-9

    def test_lemma16_sensitivity_below_two(self):
        # Across deletion neighbours the post-processed counters move by < 2 in l1.
        k = 5
        streams = [zipf_stream(400, 25, exponent=1.1, rng=seed) for seed in range(3)]
        streams.append(mg_worst_case_stream(k, repetitions=15))
        for stream in streams:
            base = reduce_sensitivity(MisraGriesSketch.from_stream(k, stream))
            for pair in neighbouring_streams_by_deletion(stream, max_pairs=60, rng=0):
                other = reduce_sensitivity(MisraGriesSketch.from_stream(k, list(pair.neighbour)))
                assert l1_distance(base, other) < 2.0 + 1e-9


class TestSensitivityReducedWrapper:
    def test_estimates_match_function(self):
        stream = zipf_stream(1_000, 50, rng=1)
        wrapper = SensitivityReducedMG.from_stream(16, stream)
        direct = reduce_sensitivity(MisraGriesSketch.from_stream(16, stream))
        assert wrapper.counters() == direct

    def test_offset_value(self):
        wrapper = SensitivityReducedMG.from_stream(4, [1, 1, 2])
        raw_total = sum(wrapper.inner.counters().values())
        assert wrapper.offset() == pytest.approx(raw_total / 5)

    def test_estimate_of_missing_element(self):
        wrapper = SensitivityReducedMG.from_stream(4, [1, 1])
        assert wrapper.estimate(999) == 0.0

    def test_error_bound_delegates(self):
        wrapper = SensitivityReducedMG.from_stream(9, range(100))
        assert wrapper.error_bound() == pytest.approx(10.0)

    def test_streaming_updates(self):
        wrapper = SensitivityReducedMG(8)
        for element in [1, 1, 1, 2, 3]:
            wrapper.update(element)
        assert wrapper.stream_length == 5
        assert wrapper.estimate(1) > 0
