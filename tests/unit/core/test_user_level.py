"""Unit tests for the Section 8 user-level release pipelines."""

import math

import pytest

from repro.core import UserLevelRelease, release_user_level_flattened, release_user_level_pamg
from repro.exceptions import ParameterError, StreamFormatError
from repro.sketches import ExactCounter
from repro.streams import distinct_user_stream
from repro.streams.user_streams import user_stream_total_length


@pytest.fixture
def user_stream():
    return distinct_user_stream(2_000, 400, max_contribution=6, exponent=1.3, rng=0)


@pytest.fixture
def user_truth(user_stream):
    return ExactCounter().update_sets(user_stream).counters()


class TestConfiguration:
    def test_validates_parameters(self):
        with pytest.raises(Exception):
            UserLevelRelease(epsilon=0.0, delta=1e-6, k=8, max_contribution=2)
        with pytest.raises(ParameterError):
            UserLevelRelease(epsilon=1.0, delta=1e-6, k=4, max_contribution=8)

    def test_element_level_parameters_follow_lemma20(self):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=64, max_contribution=4)
        params = config.element_level_parameters()
        assert params.epsilon == pytest.approx(0.25)
        assert params.delta == pytest.approx(1e-6 / (4 * math.exp(1.0)))

    def test_noise_summary_keys(self):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=64, max_contribution=4)
        summary = config.noise_summary()
        assert set(summary) == {"pamg_sigma", "pamg_threshold",
                                "flattened_laplace_scale", "flattened_threshold"}

    def test_flattened_noise_scales_with_m(self):
        scale_small = UserLevelRelease(1.0, 1e-6, 64, 2).noise_summary()["flattened_laplace_scale"]
        scale_large = UserLevelRelease(1.0, 1e-6, 64, 32).noise_summary()["flattened_laplace_scale"]
        assert scale_large == pytest.approx(16.0 * scale_small)

    def test_pamg_noise_independent_of_m(self):
        sigma_small = UserLevelRelease(1.0, 1e-6, 64, 2).noise_summary()["pamg_sigma"]
        sigma_large = UserLevelRelease(1.0, 1e-6, 64, 32).noise_summary()["pamg_sigma"]
        assert sigma_small == pytest.approx(sigma_large)


class TestReleases:
    def test_pamg_release(self, user_stream, user_truth):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=64, max_contribution=6)
        histogram = config.release_pamg(user_stream, rng=1)
        assert histogram.metadata.mechanism == "UserLevel-PAMG"
        assert len(histogram) > 0
        # The most popular element should be released and accurate within the
        # sketch bound plus the GSHM threshold.
        heaviest = max(user_truth, key=user_truth.get)
        total = user_stream_total_length(user_stream)
        slack = total / 65 + 3 * histogram.metadata.threshold
        assert abs(histogram.estimate(heaviest) - user_truth[heaviest]) <= slack

    def test_flattened_release(self, user_stream, user_truth):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=64, max_contribution=6)
        histogram = config.release_flattened(user_stream, rng=2)
        assert histogram.metadata.mechanism == "UserLevel-FlattenedPMG"
        assert histogram.metadata.epsilon == 1.0  # user-level target recorded
        heaviest = max(user_truth, key=user_truth.get)
        assert heaviest in histogram

    def test_functional_wrappers(self, user_stream):
        pamg = release_user_level_pamg(user_stream, k=64, epsilon=1.0, delta=1e-6,
                                       max_contribution=6, rng=3)
        flattened = release_user_level_flattened(user_stream, k=64, epsilon=1.0, delta=1e-6,
                                                 max_contribution=6, rng=3)
        assert pamg.metadata.mechanism == "UserLevel-PAMG"
        assert flattened.metadata.mechanism == "UserLevel-FlattenedPMG"

    def test_contribution_violations_rejected(self):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=16, max_contribution=2)
        with pytest.raises(StreamFormatError):
            config.release_pamg([frozenset({1, 2, 3})], rng=0)
        with pytest.raises(StreamFormatError):
            config.release_flattened([frozenset({1, 2, 3})], rng=0)

    def test_duplicates_rejected_only_for_pamg(self):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=16, max_contribution=4)
        with pytest.raises(StreamFormatError):
            config.release_pamg([(5, 5)], rng=0)
        # The flattened route tolerates duplicates (Corollary 21 setting).
        histogram = config.release_flattened([(5, 5)], rng=0)
        assert histogram is not None

    def test_reproducible(self, user_stream):
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=64, max_contribution=6)
        assert (config.release_pamg(user_stream, rng=9).as_dict()
                == config.release_pamg(user_stream, rng=9).as_dict())
