"""Vectorized release paths equal the frozen seed per-key loops.

Each test drives the production release (one bulk noise sample, mask-based
threshold filter, single dict construction) and the seed loop preserved in
:mod:`repro.core._reference` with identically-seeded generators and asserts
exactly equal outputs.  This works because NumPy generators produce the same
sample stream whether draws happen one scalar at a time or as one array
(Laplace and Gaussian both consume the bit stream identically either way).
"""

import numpy as np
import pytest

from repro.core._reference import (
    reference_gshm_filter,
    reference_pmg_filter,
    reference_trusted_sum_filter,
)
from repro.core.gshm import GaussianSparseHistogram
from repro.core.merging import MergeStrategy, PrivateMergedRelease, _noisy_threshold_filter
from repro.core.private_misra_gries import PrivateMisraGries
from repro.core.sensitivity_reduction import reduce_sensitivity
from repro.dp.thresholds import stability_histogram_threshold
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import sum_counters
from repro.streams import zipf_stream


class TestPmgReleaseMatchesSeedLoop:
    @pytest.mark.parametrize("noise", ["laplace", "geometric"])
    def test_release_equals_reference_filter(self, noise):
        sketch = MisraGriesSketch.from_stream(
            32, zipf_stream(5_000, 200, exponent=1.2, rng=4, as_array=True))
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6, noise=noise)
        histogram = mechanism.release(sketch, rng=123)
        generator = np.random.default_rng(123)
        counters = sketch.raw_counters()
        per_counter, shared = mechanism._sample_noise(len(counters), generator)
        expected = reference_pmg_filter(counters, per_counter, shared,
                                        mechanism.threshold(sketch.size))
        assert histogram.as_dict() == expected

    def test_empty_dict_release(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        histogram = mechanism.release({}, rng=0, k=4)
        assert histogram.as_dict() == {}

    def test_dummy_keys_never_released(self):
        sketch = MisraGriesSketch.from_stream(8, [1, 2])  # 6 dummy counters
        mechanism = PrivateMisraGries(epsilon=100.0, delta=0.5)  # tiny threshold
        histogram = mechanism.release(sketch, rng=0)
        from repro.sketches.misra_gries import DummyKey
        assert not any(isinstance(key, DummyKey) for key in histogram.as_dict())


class TestTrustedSumReleaseMatchesSeedLoop:
    def test_filter_equals_reference(self):
        generator = np.random.default_rng(77)
        aggregate = {int(key): float(value) for key, value in zip(
            range(500), generator.integers(0, 50, size=500))}
        scale = 2.0
        threshold = stability_histogram_threshold(1.0, 1e-6, sensitivity=2.0)
        assert _noisy_threshold_filter(aggregate, scale, threshold,
                                       np.random.default_rng(5)) == \
            reference_trusted_sum_filter(aggregate, scale, threshold,
                                         np.random.default_rng(5))

    def test_empty_aggregate(self):
        assert _noisy_threshold_filter({}, 2.0, 5.0, np.random.default_rng(0)) == {}

    def test_full_trusted_sum_release_equals_seed_recipe(self):
        """End-to-end: the strategy release equals the seed recipe re-run."""
        stream = zipf_stream(20_000, 500, exponent=1.2, rng=9, as_array=True)
        parts = np.array_split(stream, 8)
        sketches = [MisraGriesSketch.from_stream(64, part) for part in parts]
        release = PrivateMergedRelease(epsilon=2.0, delta=1e-6, k=64,
                                       strategy=MergeStrategy.TRUSTED_SUM)
        histogram = release.release(sketches, rng=31)
        aggregate = sum_counters([reduce_sensitivity(sketch) for sketch in sketches])
        threshold = stability_histogram_threshold(2.0, 1e-6, sensitivity=2.0)
        expected = reference_trusted_sum_filter(aggregate, 2.0 / 2.0, threshold,
                                                np.random.default_rng(31))
        assert histogram.as_dict() == expected


class TestGshmReleaseMatchesSeedLoop:
    def test_release_equals_reference_filter(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=32)
        generator = np.random.default_rng(13)
        counters = {int(key): float(value) for key, value in zip(
            range(400), generator.integers(0, 40, size=400))}  # includes zeros
        sigma, tau = mechanism.parameters()
        got = mechanism.release(counters, rng=np.random.default_rng(8)).as_dict()
        expected = reference_gshm_filter(counters, sigma, tau,
                                         np.random.default_rng(8))
        assert got == expected

    def test_zero_counters_consume_no_noise(self):
        """Zeros are filtered before sampling, as in the seed code."""
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=4)
        with_zeros = mechanism.release({1: 5.0, 2: 0.0, 3: 7.0},
                                       rng=np.random.default_rng(3)).as_dict()
        without = mechanism.release({1: 5.0, 3: 7.0},
                                    rng=np.random.default_rng(3)).as_dict()
        assert with_zeros == without

    def test_empty_release(self):
        mechanism = GaussianSparseHistogram(epsilon=1.0, delta=1e-6, l=4)
        assert mechanism.release({}, rng=0).as_dict() == {}
