"""Unit tests for Algorithm 2 (PrivateMisraGries)."""

import numpy as np
import pytest

from repro.core import PrivateMisraGries
from repro.dp.thresholds import (
    geometric_pmg_threshold,
    pmg_threshold,
    pmg_threshold_standard_sketch,
)
from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import ExactCounter, MisraGriesSketch, StandardMisraGriesSketch
from repro.streams import zipf_stream


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(Exception):
            PrivateMisraGries(epsilon=0.0, delta=1e-6)
        with pytest.raises(Exception):
            PrivateMisraGries(epsilon=1.0, delta=0.0)
        with pytest.raises(ParameterError):
            PrivateMisraGries(epsilon=1.0, delta=1e-6, noise="uniform")

    def test_noise_scale_is_one_over_epsilon(self):
        assert PrivateMisraGries(epsilon=0.25, delta=1e-6).noise_scale == pytest.approx(4.0)

    def test_threshold_selection(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        assert mechanism.threshold(64) == pytest.approx(pmg_threshold(1.0, 1e-6))
        standard = PrivateMisraGries(epsilon=1.0, delta=1e-6, standard_sketch=True)
        assert standard.threshold(64) == pytest.approx(pmg_threshold_standard_sketch(1.0, 1e-6, 64))
        geometric = PrivateMisraGries(epsilon=1.0, delta=1e-6, noise="geometric")
        assert geometric.threshold(64) == pytest.approx(geometric_pmg_threshold(1.0, 1e-6))


class TestRelease:
    def test_release_returns_histogram(self, mg_sketch_64):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        histogram = mechanism.release(mg_sketch_64, rng=0)
        assert histogram.metadata.mechanism == "PMG"
        assert histogram.metadata.sketch_size == 64
        assert histogram.metadata.stream_length == mg_sketch_64.stream_length

    def test_reproducible_with_seed(self, mg_sketch_64):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        first = mechanism.release(mg_sketch_64, rng=7)
        second = mechanism.release(mg_sketch_64, rng=7)
        assert first.as_dict() == second.as_dict()

    def test_released_values_above_threshold(self, mg_sketch_64):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        histogram = mechanism.release(mg_sketch_64, rng=1)
        threshold = mechanism.threshold(64)
        assert all(value >= threshold for value in histogram.counts.values())

    def test_no_dummy_keys_released(self):
        from repro.sketches.misra_gries import DummyKey

        sketch = MisraGriesSketch.from_stream(16, [1, 2, 3])
        mechanism = PrivateMisraGries(epsilon=10.0, delta=0.4)  # tiny threshold
        histogram = mechanism.release(sketch, rng=0)
        assert not any(isinstance(key, DummyKey) for key in histogram.keys())

    def test_released_keys_subset_of_sketch_keys(self, mg_sketch_64):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        histogram = mechanism.release(mg_sketch_64, rng=2)
        assert set(histogram.keys()) <= set(mg_sketch_64.counters().keys())

    def test_elements_not_in_stream_never_released(self):
        stream = zipf_stream(5_000, 100, rng=0)
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        histogram = mechanism.run(stream, k=32, rng=1)
        assert all(key in set(stream) for key in histogram.keys())

    def test_release_plain_dict_requires_k(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        with pytest.raises(ParameterError):
            mechanism.release({"a": 5.0})
        histogram = mechanism.release({"a": 500.0}, k=4, rng=0, stream_length=600)
        assert histogram.metadata.stream_length == 600

    def test_unsupported_sketch_type(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        with pytest.raises(ParameterError):
            mechanism.release([1, 2, 3])

    def test_standard_sketch_flag_mismatch(self, mg_sketch_64):
        standard_mech = PrivateMisraGries(epsilon=1.0, delta=1e-6, standard_sketch=True)
        with pytest.raises(SketchStateError):
            standard_mech.release(mg_sketch_64)
        paper_mech = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        standard_sketch = StandardMisraGriesSketch.from_stream(8, [1, 2, 3])
        with pytest.raises(SketchStateError):
            paper_mech.release(standard_sketch)

    def test_standard_sketch_release(self):
        stream = zipf_stream(5_000, 100, rng=3)
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6, standard_sketch=True)
        histogram = mechanism.run(stream, k=32, rng=4)
        assert histogram.metadata.threshold == pytest.approx(
            pmg_threshold_standard_sketch(1.0, 1e-6, 32))

    def test_geometric_noise_release_integer_offsets(self):
        sketch = MisraGriesSketch.from_stream(8, [1] * 500 + [2] * 300)
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6, noise="geometric")
        histogram = mechanism.release(sketch, rng=5)
        for key, value in histogram.items():
            # Geometric noise keeps counts integral.
            assert value == pytest.approx(round(value))


class TestAccuracy:
    def test_noise_error_within_lemma13_bound(self, mg_sketch_64):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        bound = mechanism.error_bound_vs_sketch(64, beta=0.01)
        failures = 0
        for seed in range(20):
            histogram = mechanism.release(mg_sketch_64, rng=seed)
            for key, value in mg_sketch_64.counters().items():
                if abs(histogram.estimate(key) - value) > bound and histogram.estimate(key) != 0.0:
                    failures += 1
                if histogram.estimate(key) == 0.0 and value > bound:
                    failures += 1
        assert failures == 0

    def test_total_error_within_theorem14_bound(self, zipf_20k, zipf_20k_truth):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        bound = mechanism.error_bound_vs_truth(64, len(zipf_20k), beta=0.01)
        histogram = mechanism.run(zipf_20k, k=64, rng=11)
        assert histogram.max_error_against(zipf_20k_truth) <= bound

    def test_error_bound_independent_of_k(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        small = mechanism.error_bound_vs_sketch(16)
        large = mechanism.error_bound_vs_sketch(1024)
        # Only the log(k+1) concentration term grows: a 64x increase in k
        # moves the bound by exactly 2 ln(1025/17), nowhere near 64x.
        assert large - small == pytest.approx(2.0 * np.log(1025 / 17))
        assert large < 1.5 * small

    def test_mse_bound_formula(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        term = 1.0 + (2.0 + 2.0 * np.log(3e6)) + 20_000 / 65
        assert mechanism.mean_squared_error_bound(64, 20_000) == pytest.approx(3 * term * term)

    def test_error_bound_validation(self):
        mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
        with pytest.raises(ParameterError):
            mechanism.error_bound_vs_sketch(64, beta=1.5)
