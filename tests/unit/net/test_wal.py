"""Unit tests for the WAL durability layer: checkpoint stores + journals.

No sockets here — these tests drive :class:`~repro.net.wal.SessionWal`
directly through the same attach/append/commit/mark_committed calls the
server-side session makes, and check the commit-protocol invariants:

* a ``put`` record is the ACK boundary — everything at or below the
  watermark replays, everything past it is an uncommitted tail that gets
  truncated, never folded, no matter where in the tail the crash landed;
* both store backends (sqlite, memory) are interchangeable behind the
  redis-shaped interface;
* recovery folds exactly the cleanly-committed sessions, in commit-seq
  order, and the replayed mergers are bit-identical to live folds.
"""

import os

import pytest

from repro.api.framing import (FramingError, StreamingMerger,
                               encode_payload_frame)
from repro.api.wire import encode_counters
from repro.exceptions import ParameterError, ProtocolError
from repro.net.store import (MemoryCheckpointStore, SessionRecord,
                             SqliteCheckpointStore, open_store)
from repro.net.wal import SessionWal

K = 16


def _envelope(counters):
    return encode_counters(counters, k=K,
                           stream_length=int(sum(counters.values())))


def _body(counters):
    """A payload frame *body* (length prefix stripped), as sessions see it."""
    return encode_payload_frame(_envelope(counters))[4:]


def _record(session_id="ord:0", **overrides):
    fields = dict(session_id=session_id, ordinal=0, client="worker",
                  k=K, spool="ord-0.spool")
    fields.update(overrides)
    return SessionRecord(**fields)


# ---------------------------------------------------------------------------
# Checkpoint stores
# ---------------------------------------------------------------------------

@pytest.fixture(params=["sqlite", "memory"])
def store(request, tmp_path):
    if request.param == "sqlite":
        backend = SqliteCheckpointStore(tmp_path / "ledger.db")
    else:
        backend = MemoryCheckpointStore()
    yield backend
    backend.close()


class TestCheckpointStores:
    def test_get_missing_returns_none(self, store):
        assert store.get("ord:99") is None

    def test_put_get_roundtrip_preserves_every_field(self, store):
        record = _record(committed_frames=3, committed_bytes=777, commit_seq=2)
        store.put(record)
        assert store.get("ord:0") == record

    def test_put_is_an_upsert(self, store):
        store.put(_record())
        store.put(_record(committed_frames=5, committed_bytes=1234))
        fetched = store.get("ord:0")
        assert fetched.committed_frames == 5
        assert fetched.committed_bytes == 1234

    def test_scan_and_sorted_records(self, store):
        for ordinal in (2, 0, 1):
            store.put(_record(session_id=f"ord:{ordinal}", ordinal=ordinal,
                              spool=f"ord-{ordinal}.spool"))
        assert {r.session_id for r in store.scan()} == {"ord:0", "ord:1", "ord:2"}
        assert [r.session_id for r in store.records()] == \
               ["ord:0", "ord:1", "ord:2"]

    def test_delete_removes_and_tolerates_missing(self, store):
        store.put(_record())
        store.delete("ord:0")
        assert store.get("ord:0") is None
        store.delete("ord:0")  # idempotent

    def test_none_fields_survive_the_roundtrip(self, store):
        record = _record(session_id="anon:abc", ordinal=None, k=None,
                         spool="anon-abc.spool")
        store.put(record)
        fetched = store.get("anon:abc")
        assert fetched.ordinal is None and fetched.k is None
        assert fetched.commit_seq is None

    def test_sqlite_store_survives_reopen(self, tmp_path):
        path = tmp_path / "ledger.db"
        with SqliteCheckpointStore(path) as store:
            store.put(_record(committed_frames=2, commit_seq=1))
        with SqliteCheckpointStore(path) as store:
            assert store.get("ord:0").commit_seq == 1


class TestOpenStore:
    def test_memory_scheme(self):
        with open_store("memory://") as store:
            assert isinstance(store, MemoryCheckpointStore)

    def test_sqlite_scheme_and_bare_path(self, tmp_path):
        with open_store(f"sqlite:///{tmp_path}/a.db") as store:
            assert isinstance(store, SqliteCheckpointStore)
            assert store.path == tmp_path / "a.db"
        with open_store(tmp_path / "b.db") as store:
            assert isinstance(store, SqliteCheckpointStore)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ParameterError, match="redis"):
            open_store("redis://localhost:6379/0")


# ---------------------------------------------------------------------------
# Journal lifecycle: attach / append / commit / resume / complete
# ---------------------------------------------------------------------------

@pytest.fixture
def wal(tmp_path):
    layer = SessionWal(tmp_path / "wal")
    yield layer
    layer.close()


FRAME_A = {1: 100.0, 2: 50.0}
FRAME_B = {2: 25.0, 3: 75.0}
FRAME_C = {4: 10.0}


class TestJournalCommitProtocol:
    def test_fresh_session_is_not_in_the_ledger_until_first_commit(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        assert wal.store.get("ord:0") is None  # appended but not ACKed
        journal.commit()
        record = wal.store.get("ord:0")
        assert record.committed_frames == 1
        assert record.commit_seq is None
        journal.close()

    def test_commit_watermark_matches_the_spool_size(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.append(_body(FRAME_B))
        journal.commit()
        record = wal.store.get("ord:0")
        assert record.committed_frames == 2
        assert wal.spool_path(record).stat().st_size == record.committed_bytes
        journal.close()

    def test_commit_with_nothing_new_is_a_noop(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        assert journal.commit() == 1
        before = wal.store.get("ord:0")
        assert journal.commit() == 1  # no new frames
        assert wal.store.get("ord:0") == before
        journal.close()

    def test_resume_replays_the_committed_prefix_bit_identically(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.append(_body(FRAME_B))
        journal.commit()
        journal.close()

        live = StreamingMerger(K)
        live.add(_envelope(FRAME_A))
        live.add(_envelope(FRAME_B))

        resumed = wal.attach(0, "worker", K)
        assert resumed.committed_frames == 2
        assert not resumed.complete
        assert resumed.merger.merged() == live.merged()
        assert list(resumed.merger.merged()) == list(live.merged())
        assert resumed.merger.total_stream_length == live.total_stream_length
        resumed.close()

    def test_uncommitted_tail_is_truncated_on_resume_never_folded(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.append(_body(FRAME_C))  # spooled, never committed (no ACK)
        journal.close()
        record = wal.store.get("ord:0")
        spool = wal.spool_path(record)
        assert spool.stat().st_size > record.committed_bytes

        resumed = wal.attach(0, "worker", K)
        assert resumed.committed_frames == 1
        assert spool.stat().st_size == record.committed_bytes
        assert 4 not in resumed.merger.merged()  # FRAME_C gone
        # The journal can keep appending from the truncated watermark.
        resumed.append(_body(FRAME_B))
        resumed.commit()
        assert wal.store.get("ord:0").committed_frames == 2
        resumed.close()

    def test_mark_committed_stamps_the_seq_and_freezes_the_session(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.mark_committed(7)
        assert wal.store.get("ord:0").commit_seq == 7

        again = wal.attach(0, "worker", K)
        assert again.complete
        assert again.committed_frames == 1
        with pytest.raises(ProtocolError) as caught:
            again.append(_body(FRAME_B))
        assert caught.value.code == "session_complete"

    def test_resume_with_mismatched_k_rejected(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        with pytest.raises(ProtocolError) as caught:
            wal.attach(0, "worker", K + 8)
        assert caught.value.code == "k_mismatch"

    def test_ensure_k_records_once_then_enforces(self, wal):
        journal = wal.attach(0, "worker", None)
        journal.ensure_k(K)
        journal.ensure_k(K)
        with pytest.raises(ProtocolError) as caught:
            journal.ensure_k(K + 1)
        assert caught.value.code == "k_mismatch"
        journal.close()

    def test_anonymous_sessions_get_distinct_throwaway_identities(self, wal):
        first = wal.attach(None, None, K)
        second = wal.attach(None, None, K)
        assert first.record.session_id != second.record.session_id
        assert first.record.session_id.startswith("anon:")
        first.close()
        second.close()

    def test_open_record_with_vanished_spool_restarts_from_scratch(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        record = wal.store.get("ord:0")
        # Zero the watermark as if nothing had committed, then lose the spool.
        wal.store.put(record.advanced(frames=0, bytes_=0))
        wal.spool_path(record).unlink()
        fresh = wal.attach(0, "worker", K)
        assert fresh.committed_frames == 0 and fresh.merger is None
        fresh.close()


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

def _committed_session(wal, ordinal, counters, seq):
    journal = wal.attach(ordinal, f"client-{ordinal}", K)
    journal.append(_body(counters))
    journal.mark_committed(seq)


class TestRecovery:
    def test_recover_folds_committed_sessions_in_seq_order(self, wal):
        # Commit in an order different from the ordinal order: replay must
        # follow the recorded commit seq, exactly like the live server did.
        _committed_session(wal, 1, FRAME_B, seq=1)
        _committed_session(wal, 0, FRAME_A, seq=2)
        open_journal = wal.attach(2, "straggler", K)
        open_journal.append(_body(FRAME_C))
        open_journal.commit()
        open_journal.close()

        recovery = wal.recover()
        assert [c.seq for c in recovery.committed] == [1, 2]
        assert [c.ordinal for c in recovery.committed] == [1, 0]
        assert recovery.max_seq == 2
        assert [r.session_id for r in recovery.open_records] == ["ord:2"]
        assert recovery.k == K
        assert recovery.committed[0].merger.merged() == \
               StreamingMerger(K).add(_envelope(FRAME_B)).merged()

    def test_recover_on_an_empty_wal_dir(self, wal):
        recovery = wal.recover()
        assert recovery.committed == [] and recovery.open_records == []
        assert recovery.k is None and recovery.max_seq == 0

    def test_orphan_spools_are_deleted(self, wal):
        # A session that died before its first commit left a spool but no
        # ledger record: by construction it holds only unACKed frames.
        journal = wal.attach(5, "worker", K)
        journal.append(_body(FRAME_A))
        journal.close()  # no commit
        spool = wal.wal_dir / "ord-5.spool"
        assert spool.exists()
        wal.recover()
        assert not spool.exists()

    def test_mixed_sketch_sizes_rejected(self, wal):
        wal.store.put(_record(session_id="ord:0", k=16, commit_seq=None,
                              spool="ord-0.spool"))
        wal.store.put(_record(session_id="ord:1", ordinal=1, k=32,
                              spool="ord-1.spool"))
        with pytest.raises(ParameterError, match="mixes sketch sizes"):
            wal.recover()

    def test_missing_spool_with_committed_frames_is_corruption(self, wal):
        wal.store.put(_record(committed_frames=2, committed_bytes=500))
        with pytest.raises(FramingError, match="missing"):
            wal.recover()

    def test_ledger_ahead_of_spool_is_corruption(self, wal):
        """The commit order makes ledger-ahead impossible in a crash; seeing
        it means real corruption and must not replay silently short."""
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        record = wal.store.get("ord:0")
        wal.store.put(record.advanced(
            frames=2, bytes_=record.committed_bytes).completed(1))
        with pytest.raises(FramingError, match="ledger committed 2"):
            wal.recover()


class TestTailTruncationEveryOffset:
    def test_crash_tail_cut_at_every_byte_offset_recovers_identically(
            self, tmp_path):
        """Property: wherever mid-tail the crash landed, recovery yields the
        same state — committed frames replayed, tail gone.

        Builds a spool with 2 committed frames, then simulates every possible
        crash point while a third frame was being appended: for each prefix
        length of the tail bytes (0 .. full frame), recovery must truncate
        back to the watermark and replay exactly the 2 committed frames.
        """
        wal = SessionWal(tmp_path / "wal", store=MemoryCheckpointStore())
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.append(_body(FRAME_B))
        journal.commit()
        journal.close()
        record = wal.store.get("ord:0")
        spool = wal.spool_path(record)
        committed = spool.read_bytes()
        assert len(committed) == record.committed_bytes
        tail = b"\x00\x00\x00" + _body(FRAME_C)  # length prefix + body
        expected = StreamingMerger(K)
        expected.add(_envelope(FRAME_A))
        expected.add(_envelope(FRAME_B))

        for cut in range(len(tail) + 1):
            spool.write_bytes(committed + tail[:cut])
            recovery = wal.recover()
            assert recovery.open_records == [record]
            assert spool.stat().st_size == record.committed_bytes
            merger = wal.replay_merger(record)
            assert merger.merged() == expected.merged()
            assert list(merger.merged()) == list(expected.merged())
        wal.close()

    def test_truncate_tail_uses_os_truncate_not_rewrite(self, tmp_path):
        """The truncation must not rewrite committed bytes (inode-level cut,
        same content before the watermark)."""
        wal = SessionWal(tmp_path / "wal", store=MemoryCheckpointStore())
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        record = wal.store.get("ord:0")
        spool = wal.spool_path(record)
        committed = spool.read_bytes()
        with open(spool, "ab") as handle:
            handle.write(b"half-written junk")
        wal.recover()
        assert spool.read_bytes() == committed
        wal.close()


class TestWalMisc:
    def test_fsync_dir_is_callable(self, wal):
        wal.fsync_dir()  # smoke: opens and fsyncs the directory fd

    def test_spool_header_carries_the_session_identity(self, wal):
        from repro.api.framing import FrameReader

        journal = wal.attach(3, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        with open(wal.wal_dir / "ord-3.spool", "rb") as handle:
            reader = FrameReader(handle, raw=True)
            assert reader.header.k == K
            assert reader.header.meta["wal_session"] == "ord:3"

    def test_wal_accepts_a_pluggable_store(self, tmp_path):
        store = MemoryCheckpointStore()
        wal = SessionWal(tmp_path / "wal", store=store)
        journal = wal.attach(0, None, K)
        journal.append(_body(FRAME_A))
        journal.commit()
        assert store.get("ord:0").committed_frames == 1
        journal.close()
        wal.close()


class TestSpoolUsage:
    """spool_usage(): the du-style footprint STATS and wal inspect report."""

    def test_empty_dir(self, wal):
        assert wal.spool_usage() == {"spools": 0, "bytes": 0}

    def test_counts_spools_and_sums_bytes(self, wal):
        for ordinal in range(3):
            journal = wal.attach(ordinal, "worker", K)
            journal.append(_body(FRAME_A))
            journal.commit()
            journal.close()
        usage = wal.spool_usage()
        assert usage["spools"] == 3
        expected = sum(path.stat().st_size
                       for path in wal.wal_dir.glob("*.spool"))
        assert usage["bytes"] == expected > 0

    def test_ignores_the_ledger_and_other_files(self, wal):
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        (wal.wal_dir / "notes.txt").write_text("not a spool")
        assert wal.spool_usage()["spools"] == 1

    def test_metrics_record_commit_timings(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(window=float("inf"))
        wal = SessionWal(tmp_path / "wal", store=MemoryCheckpointStore(),
                         metrics=registry)
        journal = wal.attach(0, "worker", K)
        journal.append(_body(FRAME_A))
        journal.commit()
        journal.close()
        wal.close()
        assert registry.counter("wal.commits_total").value == 1
        assert registry.histogram("wal.commit_seconds").summary()["count"] == 1
        assert registry.histogram("wal.fsync_seconds").summary()["count"] >= 1
