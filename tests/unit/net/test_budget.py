"""Unit tests for the server-side privacy budget accountant.

Pure accountant math and persistence — no sockets.  The over-the-wire
behavior (budget_exhausted ERROR frames, containment) lives in
tests/unit/net/test_auth_quota.py.
"""

import math

import pytest

from repro.dp.accounting import PrivacyParams, compose_adaptive, compose_basic
from repro.exceptions import ParameterError, RemoteError
from repro.net.budget import BudgetAccountant, BudgetSpend
from repro.net.store import (BUDGET_SESSION_ID, MemoryCheckpointStore,
                             SessionRecord, is_reserved_record)

PER = PrivacyParams(epsilon=0.5, delta=1e-7)


class TestConstruction:
    def test_rejects_bad_composition(self):
        with pytest.raises(ParameterError):
            BudgetAccountant(PER, composition="renyi")

    def test_rejects_non_params_budget(self):
        with pytest.raises(ParameterError):
            BudgetAccountant(PER, budget=(1.0, 1e-6))

    def test_advanced_needs_slack_or_budget_delta(self):
        with pytest.raises(ParameterError):
            BudgetAccountant(PER, composition="advanced")
        # Budget delta > 0 supplies the default slack (half of it).
        accountant = BudgetAccountant(
            PER, budget=PrivacyParams(10.0, 1e-5), composition="advanced")
        assert accountant.delta_slack == pytest.approx(5e-6)

    def test_explicit_slack_wins(self):
        accountant = BudgetAccountant(PER, composition="advanced",
                                      delta_slack=1e-9)
        assert accountant.delta_slack == pytest.approx(1e-9)


class TestMetering:
    def test_no_budget_never_refuses(self):
        accountant = BudgetAccountant(PER)
        for n in range(1, 8):
            spend = accountant.charge()
            assert spend.releases == n
        assert accountant.releases_charged == 7
        assert not accountant.exhausted
        assert accountant.remaining is None

    def test_spent_matches_compose_basic(self):
        accountant = BudgetAccountant(PER)
        for _ in range(3):
            accountant.charge()
        expected = compose_basic([PER] * 3)
        assert accountant.spent.epsilon == pytest.approx(expected.epsilon)
        assert accountant.spent.delta == pytest.approx(expected.delta)

    def test_advanced_spent_matches_compose_adaptive(self):
        accountant = BudgetAccountant(PER, composition="advanced",
                                      delta_slack=1e-6)
        for _ in range(5):
            accountant.charge()
        expected = compose_adaptive(PER.epsilon, PER.delta, 5, 1e-6)
        assert accountant.spent.epsilon == pytest.approx(expected.epsilon)
        assert accountant.spent.delta == pytest.approx(expected.delta)

    def test_metering_still_refuses_vacuous(self):
        # Even without a budget, a release that would make the composed
        # guarantee vacuous (delta >= 1) is refused: no guarantee at all
        # is worse than a refused release.
        per = PrivacyParams(epsilon=0.1, delta=0.4)
        accountant = BudgetAccountant(per)
        accountant.charge()
        accountant.charge()
        assert accountant.exhausted
        with pytest.raises(RemoteError) as excinfo:
            accountant.charge()
        assert excinfo.value.code == "budget_exhausted"

    def test_zero_releases_spend_nothing(self):
        accountant = BudgetAccountant(PER)
        assert accountant.spent == BudgetSpend(releases=0, epsilon=0.0,
                                               delta=0.0)


class TestBudgetGate:
    def test_exact_multiple_admits_all_releases(self):
        # Budget of exactly N * epsilon admits N releases despite float
        # summation error (0.1 * 3 != 0.3 in binary).
        per = PrivacyParams(epsilon=0.1, delta=1e-8)
        accountant = BudgetAccountant(
            per, budget=PrivacyParams(epsilon=0.3, delta=1.0 - 1e-9))
        for _ in range(3):
            accountant.charge()
        assert accountant.exhausted
        with pytest.raises(RemoteError) as excinfo:
            accountant.charge()
        assert excinfo.value.code == "budget_exhausted"
        assert accountant.releases_charged == 3

    def test_refused_charge_leaves_count_untouched(self):
        accountant = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=PER.epsilon, delta=1e-6))
        accountant.charge()
        for _ in range(3):
            with pytest.raises(RemoteError):
                accountant.charge()
        assert accountant.releases_charged == 1

    def test_remaining_shrinks_then_none(self):
        accountant = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=1.0, delta=1e-6))
        first = accountant.remaining
        assert first.epsilon == pytest.approx(1.0)
        accountant.charge()
        second = accountant.remaining
        assert second.epsilon == pytest.approx(0.5)
        accountant.charge()
        assert accountant.remaining is None
        assert accountant.exhausted

    def test_delta_budget_binds_too(self):
        # Epsilon budget is roomy but delta runs out after 2 releases.
        accountant = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=100.0, delta=2e-7))
        accountant.charge()
        accountant.charge()
        with pytest.raises(RemoteError) as excinfo:
            accountant.charge()
        assert excinfo.value.code == "budget_exhausted"

    def test_vacuous_composition_is_exhausted(self):
        # Per-release delta 0.4: the third release would push composed
        # delta past 1 — vacuous, refused even under a huge budget.
        per = PrivacyParams(epsilon=0.1, delta=0.4)
        accountant = BudgetAccountant(
            per, budget=PrivacyParams(epsilon=1e6, delta=1.0 - 1e-9))
        accountant.charge()
        accountant.charge()
        with pytest.raises(RemoteError) as excinfo:
            accountant.charge()
        assert excinfo.value.code == "budget_exhausted"
        assert "vacuous" in str(excinfo.value)

    def test_pure_dp_budget(self):
        # delta=0 end to end: pure epsilon accounting, no vacuous cliff.
        per = PrivacyParams(epsilon=1.0, delta=0.0)
        accountant = BudgetAccountant(per,
                                      budget=PrivacyParams(epsilon=2.0,
                                                           delta=0.0))
        accountant.charge()
        accountant.charge()
        assert accountant.spent.delta == 0.0
        with pytest.raises(RemoteError):
            accountant.charge()


class TestPersistence:
    def test_charge_persists_before_return(self):
        store = MemoryCheckpointStore()
        accountant = BudgetAccountant(PER, store=store)
        accountant.charge()
        record = store.get(BUDGET_SESSION_ID)
        assert record is not None
        assert record.committed_frames == 1
        assert record.client == "basic"
        assert is_reserved_record(record)

    def test_reopen_resumes_spend(self):
        # The crash-window property at accountant granularity: a charge is
        # durable the moment charge() returns, so a new accountant over the
        # same store sees it — never a reset, never a double-charge.
        store = MemoryCheckpointStore()
        first = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=1.5, delta=1e-6), store=store)
        first.charge()
        first.charge()
        second = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=1.5, delta=1e-6), store=store)
        assert second.releases_charged == 2
        second.charge()
        with pytest.raises(RemoteError) as excinfo:
            second.charge()
        assert excinfo.value.code == "budget_exhausted"

    def test_refused_charge_not_persisted(self):
        store = MemoryCheckpointStore()
        accountant = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=PER.epsilon, delta=1e-6),
            store=store)
        accountant.charge()
        with pytest.raises(RemoteError):
            accountant.charge()
        assert store.get(BUDGET_SESSION_ID).committed_frames == 1

    def test_garbage_negative_count_clamped(self):
        store = MemoryCheckpointStore()
        store.put(SessionRecord(session_id=BUDGET_SESSION_ID, ordinal=None,
                                client="basic", k=None, spool="",
                                committed_frames=-3))
        accountant = BudgetAccountant(PER, store=store)
        assert accountant.releases_charged == 0


class TestStatsStanza:
    def test_metering_stanza(self):
        accountant = BudgetAccountant(PER)
        accountant.charge()
        stanza = accountant.as_stats()
        assert stanza["per_release"] == {"epsilon": PER.epsilon,
                                         "delta": PER.delta}
        assert stanza["composition"] == "basic"
        assert stanza["releases_charged"] == 1
        assert stanza["spent"]["epsilon"] == pytest.approx(PER.epsilon)
        assert stanza["budget"] is None
        assert stanza["remaining"] is None
        assert stanza["exhausted"] is False

    def test_budgeted_stanza_counts_down_to_exhausted(self):
        accountant = BudgetAccountant(
            PER, budget=PrivacyParams(epsilon=1.0, delta=1e-6))
        accountant.charge()
        accountant.charge()
        stanza = accountant.as_stats()
        assert stanza["exhausted"] is True
        assert stanza["remaining"] == {"epsilon": 0.0, "delta": 0.0}
        assert stanza["budget"]["epsilon"] == pytest.approx(1.0)

    def test_vacuous_spend_is_json_safe(self):
        # A persisted count whose composed spend is already vacuous (e.g.
        # the per-release parameters were loosened across a restart) must
        # report epsilon as None, not inf — inf is not valid JSON and would
        # break the STATS frame.
        store = MemoryCheckpointStore()
        store.put(SessionRecord(session_id=BUDGET_SESSION_ID, ordinal=None,
                                client="basic", k=None, spool="",
                                committed_frames=4))
        accountant = BudgetAccountant(PrivacyParams(epsilon=0.2, delta=0.3),
                                      store=store)
        stanza = accountant.as_stats()
        assert stanza["spent"]["vacuous"] is True
        assert stanza["exhausted"] is True
        spent_eps = stanza["spent"]["epsilon"]
        assert spent_eps is None or math.isfinite(spent_eps)
