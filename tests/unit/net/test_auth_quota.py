"""Multi-tenant hardening over the wire: auth, quotas, budget enforcement.

Every test drives real servers on ephemeral loopback ports inside one event
loop and asserts the containment story: a rejected session (bad token,
busted quota, exhausted budget) gets a machine-readable ERROR frame and the
server keeps serving everyone else.
"""

import asyncio

import pytest

from repro.api import framing
from repro.api.framing import FrameHeader, StreamingMerger, summary_payload
from repro.api.wire import encode_counters
from repro.dp.accounting import PrivacyParams
from repro.exceptions import RemoteError
from repro.net import (
    AggregatorClient,
    AggregatorServer,
    RelayAggregatorServer,
)
from repro.net.protocol import FrameChannel

pytestmark = pytest.mark.net

EPSILON, DELTA, K = 1.0, 1e-6, 16
TOKEN = "sesame-42"


def _export(counters):
    return encode_counters(counters, k=K,
                           stream_length=int(sum(counters.values())))


async def _started_server(**kwargs):
    server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=K, **kwargs)
    await server.start("127.0.0.1:0")
    return server


async def _push_one(server, counters, *, ordinal=None, token=None):
    async with AggregatorClient(server.address, k=K, ordinal=ordinal,
                                auth_token=token) as client:
        await client.push([_export(counters)])


def _run(coroutine):
    return asyncio.run(coroutine)


class TestAuth:
    def test_missing_token_rejected_right_token_served(self):
        async def scenario():
            async with await _started_server(auth_token=TOKEN) as server:
                with pytest.raises(RemoteError) as caught:
                    await _push_one(server, {1: 5.0})
                assert caught.value.code == "auth_failed"
                # Same server, same socket, token presented: full service.
                await _push_one(server, {1: 4000.0}, ordinal=0, token=TOKEN)
                async with AggregatorClient(server.address,
                                            auth_token=TOKEN) as client:
                    histogram = await client.request_release(seed=3)
                stats = server.stats()
                return histogram, stats
        histogram, stats = _run(scenario())
        assert histogram.metadata.sketch_size == K
        assert stats["sessions_rejected"] == 1
        assert stats["sessions_committed"] == 1
        assert stats["auth_required"] is True

    def test_wrong_token_rejected(self):
        async def scenario():
            async with await _started_server(auth_token=TOKEN) as server:
                with pytest.raises(RemoteError) as caught:
                    await _push_one(server, {1: 5.0}, token="not-it")
                return caught.value.code
        assert _run(scenario()) == "auth_failed"

    def test_unauthenticated_hello_does_not_adopt_header_k(self):
        # A k=None auth server must not let an unauthenticated stream
        # header set the aggregation's sketch size.
        async def scenario():
            server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=None,
                                      auth_token=TOKEN)
            async with await server.start("127.0.0.1:0"):
                with pytest.raises(RemoteError):
                    await _push_one(server, {1: 5.0})  # no token, declares K
                return server.k
        assert _run(scenario()) is None

    def test_relay_forward_needs_upstream_token(self):
        async def scenario():
            root = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=K,
                                    accept_relays=True, auth_token=TOKEN)
            async with await root.start("127.0.0.1:0"):
                bad = RelayAggregatorServer(
                    epsilon=EPSILON, delta=DELTA, k=K, upstream=root.address,
                    forward_max_elapsed=1.0)
                await bad.start("127.0.0.1:0")
                try:
                    await _push_one(bad, {1: 7.0}, ordinal=0)
                    with pytest.raises(RemoteError) as caught:
                        await bad.forward_flush()
                    assert caught.value.code == "auth_failed"
                finally:
                    await bad.aclose()
                good = RelayAggregatorServer(
                    epsilon=EPSILON, delta=DELTA, k=K, upstream=root.address,
                    upstream_token=TOKEN)
                await good.start("127.0.0.1:0")
                try:
                    await _push_one(good, {1: 7.0}, ordinal=0)
                    await good.forward_flush()
                finally:
                    await good.aclose()
                return root.stats()["sessions_committed"]
        assert _run(scenario()) == 1


class TestQuotas:
    def test_declared_burst_over_frame_quota_refused_upfront(self):
        async def scenario():
            async with await _started_server(max_session_frames=2) as server:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=K) as client:
                        await client.push([_export({1: 1.0}),
                                           _export({2: 2.0}),
                                           _export({3: 3.0})])
                assert caught.value.code == "quota_exceeded"
                # The whole burst was refused before any fold.
                assert server.stats()["frames"] == 0
                # A session within quota is unaffected.
                async with AggregatorClient(server.address, k=K,
                                            ordinal=0) as client:
                    await client.push([_export({1: 100.0}),
                                       _export({2: 50.0})])
                return server.stats()
        stats = _run(scenario())
        assert stats["sessions_committed"] == 1
        assert stats["frames"] == 2
        assert stats["quota"]["max_session_frames"] == 2

    def test_frame_quota_spans_bursts(self):
        async def scenario():
            async with await _started_server(max_session_frames=2) as server:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=K) as client:
                        await client.push([_export({1: 1.0})])
                        await client.push([_export({2: 2.0})])
                        await client.push([_export({3: 3.0})])
                return caught.value.code
        assert _run(scenario()) == "quota_exceeded"

    def test_byte_quota_cuts_fat_session_only(self):
        async def scenario():
            # A slim single-counter frame encodes to ~131 body bytes, the
            # full-k frame to ~371: a 200-byte quota separates them.
            async with await _started_server(max_session_bytes=200) as server:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=K) as client:
                        await client.push(
                            [_export({index: 10.0 for index in range(K)})])
                assert caught.value.code == "quota_exceeded"
                # A slimmer session fits and the release still works.
                await _push_one(server, {1: 4000.0}, ordinal=0)
                async with AggregatorClient(server.address) as client:
                    return await client.request_release(seed=3)
        histogram = _run(scenario())
        assert histogram.metadata.sketch_size == K

    def test_sketch_quota_counts_relay_origin_exports(self):
        # One relay summary frame covering 3 origin exports must charge
        # the sketch quota 3, not 1.
        async def scenario():
            async with await _started_server(accept_relays=True,
                                             max_session_sketches=2) as server:
                merger = StreamingMerger(K)
                for index in range(3):
                    merger.add(_export({index + 1: 2.0}))
                reader, writer = await asyncio.open_connection(
                    *server.address.split(":"))
                channel = FrameChannel(reader, writer)
                await channel.send_prefix(FrameHeader(
                    framing=framing.FRAMING_VERSION, frames=None, k=K))
                await channel.send_control("hello", k=K, role="relay")
                await channel.read_prefix()
                await channel.next_event()  # ok re=hello
                await channel.send_control("push", frames=1)
                await channel.send_payload(summary_payload(merger))
                kind, value = await channel.next_event()
                await channel.close()
                return kind, value, server.stats()
        kind, value, stats = _run(scenario())
        assert kind == "control" and value["verb"] == "error"
        assert value["code"] == "quota_exceeded"
        assert "sketches" in value["message"]
        assert stats["frames"] == 0


class TestBudgetOverTheWire:
    def test_budget_exhausted_refuses_then_keeps_serving(self):
        async def scenario():
            budget = PrivacyParams(epsilon=2 * EPSILON, delta=1.0 - 1e-9)
            async with await _started_server(budget=budget) as server:
                await _push_one(server, {1: 4000.0, 2: 2000.0}, ordinal=0)
                async with AggregatorClient(server.address) as client:
                    first = await client.request_release(seed=3)
                    second = await client.request_release(seed=3)
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address) as client:
                        await client.request_release(seed=3)
                assert caught.value.code == "budget_exhausted"
                # The refusal is contained: STATS still answers, new
                # sessions still push, the spend is still 2 releases.
                await _push_one(server, {3: 1000.0}, ordinal=1)
                async with AggregatorClient(server.address) as client:
                    stats = await client.stats()
                return first, second, stats
        first, second, stats = _run(scenario())
        assert list(first.items()) == list(second.items())
        privacy = stats["privacy"]
        assert privacy["releases_charged"] == 2
        assert privacy["exhausted"] is True
        assert privacy["spent"]["epsilon"] == pytest.approx(2 * EPSILON)
        # Epsilon is fully spent, so the whole remaining pair collapses to
        # zero — there is no usable budget left in any dimension.
        assert privacy["remaining"] == {"epsilon": 0.0, "delta": 0.0}
        assert stats["sessions_committed"] == 2
        assert stats["releases"] == 2

    def test_metering_stats_without_budget(self):
        async def scenario():
            async with await _started_server() as server:
                await _push_one(server, {1: 300.0}, ordinal=0)
                async with AggregatorClient(server.address) as client:
                    await client.request_release(seed=1)
                    return await client.stats()
        stats = _run(scenario())
        privacy = stats["privacy"]
        assert privacy["releases_charged"] == 1
        assert privacy["per_release"] == {"epsilon": EPSILON, "delta": DELTA}
        assert privacy["budget"] is None
        assert privacy["exhausted"] is False

    def test_pure_dp_server_serves_but_refuses_gshm_release(self):
        async def scenario():
            server = AggregatorServer(epsilon=EPSILON, delta=0.0, k=K)
            async with await server.start("127.0.0.1:0"):
                await _push_one(server, {1: 50.0}, ordinal=0)
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address) as client:
                        await client.request_release(seed=3)
                assert caught.value.code == "pure_dp_release_unsupported"
                # The refusal charged nothing and the server still serves.
                async with AggregatorClient(server.address) as client:
                    stats = await client.stats()
                return stats
        stats = _run(scenario())
        assert stats["privacy"]["releases_charged"] == 0
        assert stats["sessions_committed"] == 1

    def test_relay_release_charges_root_exactly_once(self):
        async def scenario():
            budget = PrivacyParams(epsilon=EPSILON, delta=1.0 - 1e-9)
            root = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=K,
                                    accept_relays=True, budget=budget)
            async with await root.start("127.0.0.1:0"):
                relay = RelayAggregatorServer(
                    epsilon=EPSILON, delta=DELTA, k=K, upstream=root.address)
                await relay.start("127.0.0.1:0")
                try:
                    await _push_one(relay, {1: 900.0}, ordinal=0)
                    async with AggregatorClient(relay.address) as client:
                        histogram = await client.request_release(seed=7)
                    charged = (root.accountant.releases_charged,
                               relay.accountant.releases_charged)
                    # The root's budget is now spent; a second release
                    # through the leaf surfaces the root's refusal.
                    with pytest.raises(RemoteError) as caught:
                        async with AggregatorClient(relay.address) as client:
                            await client.request_release(seed=7)
                    return histogram, charged, caught.value.code
                finally:
                    await relay.aclose()
        histogram, charged, code = _run(scenario())
        assert histogram.metadata.sketch_size == K
        assert charged == (1, 0)
        assert code == "budget_exhausted"
