"""In-process durability tests: WAL-backed server, resume, restart identity.

These drive real sockets (loopback) but keep server and clients in one
process and one event loop — the subprocess SIGKILL harness lives in
``tests/chaos/``.  Here the "crashes" are surgical: abrupt disconnects at
chosen protocol points, plus full server object teardown/rebuild on the
same ``wal_dir``, which exercises exactly the recovery path a killed
process takes (the WAL state on disk is the only carried-over state).
"""

import asyncio
import io

import pytest

from repro.api import framing
from repro.api.framing import FrameHeader, FrameWriter
from repro.api.wire import encode_counters
from repro.exceptions import RemoteError
from repro.net import AggregatorClient, AggregatorServer
from repro.net.protocol import FrameChannel

pytestmark = pytest.mark.net

EPSILON, DELTA, K = 1.0, 1e-6, 16

FRAMES = [{1: 400.0, 2: 100.0}, {2: 200.0, 3: 300.0},
          {3: 50.0, 4: 450.0}, {1: 125.0, 5: 375.0}]


def _export(counters):
    return encode_counters(counters, k=K,
                           stream_length=int(sum(counters.values())))


def _packed(path, frames=FRAMES):
    buffer = io.BytesIO()
    with FrameWriter(buffer, k=K, frames=len(frames)) as writer:
        for counters in frames:
            writer.write_payload(_export(counters))
    path.write_bytes(buffer.getvalue())
    return path


async def _started(wal_dir=None, **kwargs):
    server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=K,
                              wal_dir=wal_dir, **kwargs)
    await server.start("127.0.0.1:0")
    return server


async def _raw_channel(server, ordinal):
    reader, writer = await asyncio.open_connection(*server.address.split(":"))
    channel = FrameChannel(reader, writer)
    await channel.send_prefix(FrameHeader(framing=framing.FRAMING_VERSION,
                                          frames=None, k=K))
    await channel.send_control("hello", k=K, ordinal=ordinal)
    await channel.read_prefix()
    kind, ack = await channel.next_event()
    assert kind == "control" and ack["verb"] == "ok"
    return channel, ack


def _identical(left, right):
    assert left.counts == right.counts
    assert list(left.counts) == list(right.counts)
    assert left.metadata.as_dict() == right.metadata.as_dict()


def _run(coroutine):
    return asyncio.run(coroutine)


class TestRestartIdentity:
    def test_release_is_bit_identical_after_restart(self, tmp_path):
        """Two committed sessions, server torn down, rebuilt on the same
        wal_dir: the recovered release must match the live one exactly —
        keys, values, dict order and metadata."""
        async def scenario():
            server = await _started(wal_dir=tmp_path / "wal")
            async with server:
                async with AggregatorClient(server.address, k=K,
                                            ordinal=1) as client:
                    await client.push([_export(FRAMES[2])])
                async with AggregatorClient(server.address, k=K,
                                            ordinal=0) as client:
                    await client.push([_export(FRAMES[0]),
                                       _export(FRAMES[1])])
                async with AggregatorClient(server.address) as querier:
                    live = await querier.request_release(seed=42)
            restarted = await _started(wal_dir=tmp_path / "wal")
            async with restarted:
                async with AggregatorClient(restarted.address) as querier:
                    recovered = await querier.request_release(seed=42)
            return live, recovered
        live, recovered = _run(scenario())
        _identical(live, recovered)

    def test_recovery_survives_a_second_restart(self, tmp_path):
        """Recovery must be idempotent: recover, commit more, recover again."""
        async def scenario():
            releases = []
            for ordinal, counters in enumerate(FRAMES[:3]):
                server = await _started(wal_dir=tmp_path / "wal")
                async with server:
                    async with AggregatorClient(server.address, k=K,
                                                ordinal=ordinal) as client:
                        await client.push([_export(counters)])
                    async with AggregatorClient(server.address) as querier:
                        releases.append(await querier.request_release(seed=9))
            server = await _started(wal_dir=tmp_path / "wal")
            async with server:
                async with AggregatorClient(server.address) as querier:
                    final = await querier.request_release(seed=9)
            return releases, final
        releases, final = _run(scenario())
        _identical(releases[-1], final)
        assert "streams=3" in final.metadata.notes

    def test_wal_off_has_no_durability(self, tmp_path):
        """Control: without --wal-dir a restart forgets everything."""
        async def scenario():
            server = await _started()
            async with server:
                async with AggregatorClient(server.address, k=K,
                                            ordinal=0) as client:
                    await client.push([_export(FRAMES[0])])
            restarted = await _started()
            async with restarted:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(restarted.address) as querier:
                        await querier.request_release(seed=1)
            return caught.value.code
        assert _run(scenario()) == "nothing_to_release"


class TestIdempotentResume:
    def test_each_frame_folds_exactly_once_across_a_crashed_push(self, tmp_path):
        """The acceptance scenario, in-process: a client loses its connection
        mid-burst after two ACKed frames; the re-HELLO reports committed=2,
        push_file skips them, and the release equals an uninterrupted one."""
        packed = _packed(tmp_path / "exports.frames")

        async def scenario():
            server = await _started(wal_dir=tmp_path / "wal")
            async with server:
                # First attempt: frames 0 and 1 are pushed and ACKed, then a
                # second burst dies after declaring 2 frames and sending 1 —
                # the sent-but-unACKed frame must not count.
                channel, ack = await _raw_channel(server, ordinal=0)
                assert ack["committed"] == 0
                await channel.send_control("push", frames=2)
                await channel.send_payload(_export(FRAMES[0]))
                await channel.send_payload(_export(FRAMES[1]))
                kind, value = await channel.next_event()
                assert value["verb"] == "ok" and value["folded"] == 2
                await channel.send_control("push", frames=2)
                await channel.send_payload(_export(FRAMES[2]))
                await channel.close()  # vanish mid-burst, no ack seen
                await asyncio.sleep(0.05)

                # Resume: the server reports the durable prefix; push_file
                # skips exactly that many frames.
                async with AggregatorClient(server.address, k=K,
                                            ordinal=0) as client:
                    assert client.committed == 2
                    assert not client.session_complete
                    pushed = await client.push_file(packed)
                    assert pushed == 2  # frames 2 and 3 only
                async with AggregatorClient(server.address) as querier:
                    resumed = await querier.request_release(seed=7)

            # Reference: the same four frames pushed once, uninterrupted.
            reference = await _started(wal_dir=tmp_path / "ref-wal")
            async with reference:
                async with AggregatorClient(reference.address, k=K,
                                            ordinal=0) as client:
                    await client.push_file(packed)
                async with AggregatorClient(reference.address) as querier:
                    uninterrupted = await querier.request_release(seed=7)
            return resumed, uninterrupted
        resumed, uninterrupted = _run(scenario())
        _identical(resumed, uninterrupted)

    def test_completed_session_reports_complete_and_rejects_pushes(self, tmp_path):
        async def scenario():
            server = await _started(wal_dir=tmp_path / "wal")
            async with server:
                async with AggregatorClient(server.address, k=K,
                                            ordinal=3) as client:
                    await client.push([_export(FRAMES[0])])
                async with AggregatorClient(server.address, k=K,
                                            ordinal=3) as client:
                    assert client.session_complete
                    assert client.committed == 1
                    with pytest.raises(RemoteError) as caught:
                        await client.push([_export(FRAMES[1])])
                    return caught.value.code
        assert _run(scenario()) == "session_complete"

    def test_completion_survives_a_restart(self, tmp_path):
        async def scenario():
            server = await _started(wal_dir=tmp_path / "wal")
            async with server:
                async with AggregatorClient(server.address, k=K,
                                            ordinal=3) as client:
                    await client.push([_export(FRAMES[0])])
            restarted = await _started(wal_dir=tmp_path / "wal")
            async with restarted:
                async with AggregatorClient(restarted.address, k=K,
                                            ordinal=3) as client:
                    return client.session_complete, client.committed
        complete, committed = _run(scenario())
        assert complete and committed == 1

    def test_concurrent_hello_on_the_same_ordinal_rejected(self, tmp_path):
        """Two live sessions under one durable identity would interleave
        appends into one spool; the second HELLO must lose."""
        async def scenario():
            server = await _started(wal_dir=tmp_path / "wal")
            async with server:
                first = AggregatorClient(server.address, k=K, ordinal=5)
                await first.connect()
                try:
                    with pytest.raises(RemoteError) as caught:
                        async with AggregatorClient(server.address, k=K,
                                                    ordinal=5):
                            pass
                finally:
                    await first.close()
                return caught.value.code
        assert _run(scenario()) == "ordinal_active"

    def test_without_wal_duplicate_ordinals_stay_permitted(self):
        """Pre-WAL semantics unchanged: ordinals are only a sort key when
        nothing durable hangs off them."""
        async def scenario():
            server = await _started()
            async with server:
                first = AggregatorClient(server.address, k=K, ordinal=5)
                second = AggregatorClient(server.address, k=K, ordinal=5)
                await first.connect()
                await second.connect()
                await first.close()
                await second.close()
                return True
        assert _run(scenario())

    def test_push_file_resilient_sync_helper_commits_durably(self, tmp_path):
        from repro.net import push_file_resilient

        packed = _packed(tmp_path / "exports.frames")

        async def serve():
            return await _started(wal_dir=tmp_path / "wal")

        async def scenario():
            server = await serve()
            async with server:
                loop = asyncio.get_running_loop()
                pushed = await loop.run_in_executor(
                    None, lambda: push_file_resilient(
                        server.address, packed, ordinal=0, k=K,
                        max_elapsed=20.0))
                # A second call finds the session complete: nothing pushed.
                again = await loop.run_in_executor(
                    None, lambda: push_file_resilient(
                        server.address, packed, ordinal=0, k=K,
                        max_elapsed=20.0))
                async with AggregatorClient(server.address) as querier:
                    stats = await querier.stats()
                return pushed, again, stats
        pushed, again, stats = _run(scenario())
        assert pushed == len(FRAMES)
        assert again == 0
        assert stats["sessions_committed"] == 1
