"""Unit tests for the control-frame codecs, address parsing and fold fan-in."""

import io

import numpy as np
import pytest

from repro.api import framing
from repro.api.framing import (
    CONTROL_FRAME_TAG,
    FrameReader,
    FrameWriter,
    StreamingMerger,
    combine_mergers,
)
from repro.api.wire import decode, encode_counters
from repro.exceptions import FramingError, ParameterError
from repro.net.protocol import Address, parse_address


class TestAddressParsing:
    def test_tcp_host_port(self):
        address = parse_address("127.0.0.1:7788")
        assert address == Address(kind="tcp", host="127.0.0.1", port=7788)
        assert str(address) == "127.0.0.1:7788"

    def test_bare_port_defaults_to_loopback(self):
        address = parse_address(":0")
        assert address.host == "127.0.0.1"
        assert address.port == 0

    def test_unix_path(self):
        address = parse_address("unix:/tmp/agg.sock")
        assert address == Address(kind="unix", path="/tmp/agg.sock")
        assert str(address) == "unix:/tmp/agg.sock"

    def test_address_passthrough(self):
        address = Address(kind="tcp", host="h", port=1)
        assert parse_address(address) is address

    @pytest.mark.parametrize("bad", ["", "no-port", "unix:", "host:port", 7])
    def test_bad_addresses_raise(self, bad):
        with pytest.raises(ParameterError):
            parse_address(bad)


class TestControlFrames:
    def test_control_frame_round_trip(self):
        frame = framing.encode_control_frame({"verb": "hello", "k": 8, "ordinal": 2})
        body = frame[4:]  # strip the length prefix
        assert body[0] == CONTROL_FRAME_TAG
        message = framing.decode_control_body(body)
        assert message == {"verb": "hello", "k": 8, "ordinal": 2}

    def test_control_frame_requires_verb(self):
        with pytest.raises(FramingError, match="verb"):
            framing.encode_control_frame({"k": 8})
        bad = bytes([CONTROL_FRAME_TAG]) + b'{"k": 8}'
        with pytest.raises(FramingError, match="verb"):
            framing.decode_control_body(bad)

    def test_payload_reader_rejects_control_frames(self):
        """`repro pack` files never carry control frames; FrameReader says so."""
        buffer = io.BytesIO()
        FrameWriter(buffer, k=4)
        buffer.write(framing.encode_control_frame({"verb": "hello"}))
        with pytest.raises(FramingError, match="control frame"):
            list(FrameReader(io.BytesIO(buffer.getvalue())))

    def test_decode_payload_body_names_unknown_tags(self):
        with pytest.raises(FramingError, match="0x02"):
            framing.decode_payload_body(b"\x7fgarbage")


class TestRawFrameReader:
    def test_raw_mode_yields_verbatim_bodies(self):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=4, frames=2) as writer:
            writer.write_counters({1: 2.0}, k=4)
            writer.write_counters({2: 3.0}, k=4)
        bodies = list(FrameReader(io.BytesIO(buffer.getvalue()), raw=True))
        assert all(isinstance(body, bytes) for body in bodies)
        # The raw bodies decode to the same payloads the decoding reader sees.
        decoded = [framing.decode_payload_body(body) for body in bodies]
        expected = list(FrameReader(io.BytesIO(buffer.getvalue())))
        assert [p.counters() for p in decoded] == [p.counters() for p in expected]

    def test_raw_mode_still_validates_tags(self):
        buffer = io.BytesIO()
        FrameWriter(buffer, k=4)
        buffer.write(framing.encode_frame(b"\x7fjunk"))
        with pytest.raises(FramingError, match="frame tag"):
            list(FrameReader(io.BytesIO(buffer.getvalue()), raw=True))


def _merger_of(counters_list, k):
    merger = StreamingMerger(k)
    for counters in counters_list:
        merger.add(encode_counters(counters, k=k, stream_length=len(counters)))
    return merger


class TestAbsorbAndCombine:
    def test_single_part_passes_through_bit_identically(self):
        part = _merger_of([{1: 2.0, 2: 1.0}, {2: 5.0, 3: 1.0}], 4)
        combined = combine_mergers([part], 4)
        assert combined is part

    def test_absorb_into_empty_reproduces_summary(self):
        part = _merger_of([{1: 2.0, 2: 1.0}, {2: 5.0, 3: 1.0}], 4)
        combined = StreamingMerger(4).absorb(part)
        assert combined.merged() == part.merged()
        assert list(combined.merged()) == list(part.merged())
        assert combined.frames == part.frames
        assert combined.total_stream_length == part.total_stream_length

    def test_combine_matches_merge_of_summaries(self):
        from repro.sketches.merge import merge_many

        parts = [_merger_of([{1: 5.0, 2: 1.0}], 2),
                 _merger_of([{2: 3.0, 3: 2.0}], 2),
                 _merger_of([{1: 1.0, 4: 4.0}], 2)]
        combined = combine_mergers(parts, 2)
        expected = merge_many([part.merged() for part in parts], 2)
        assert combined.merged() == expected
        assert combined.frames == 3

    def test_absorb_mixed_dict_and_columnar_modes(self):
        columnar = _merger_of([{1: 2.0}], 4)
        token = StreamingMerger(4)
        token.add(encode_counters({"a": 3.0}, k=4))
        assert not token.columnar
        combined = StreamingMerger(4).absorb(columnar).absorb(token)
        assert combined.merged() == {1: 2.0, "a": 3.0}

    def test_absorb_rejects_k_mismatch(self):
        with pytest.raises(ParameterError, match="k="):
            StreamingMerger(4).absorb(_merger_of([{1: 1.0}], 8))

    def test_absorb_rejects_non_mergers(self):
        with pytest.raises(ParameterError, match="StreamingMerger"):
            StreamingMerger(4).absorb({1: 1.0})

    def test_empty_parts_are_skipped(self):
        part = _merger_of([{7: 2.0}], 4)
        combined = combine_mergers([StreamingMerger(4), part, StreamingMerger(4)], 4)
        assert combined is part


class TestLazyWireKeys:
    def test_binary_frames_decode_without_materializing_keys(self):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=4, frames=1) as writer:
            writer.write_counters({5: 2.0, 9: 1.0}, k=4)
        (payload,) = list(FrameReader(io.BytesIO(buffer.getvalue())))
        assert payload.key_array is not None
        assert payload._keys is None  # nothing materialized yet
        merged = StreamingMerger(4).add(payload)
        assert payload._keys is None  # the fold stayed columnar
        assert merged.merged() == {5: 2.0, 9: 1.0}
        assert payload.keys == [5, 9]  # materializes (and caches) on demand
        assert payload._keys == [5, 9]

    def test_json_decode_still_eager_and_equal(self):
        envelope = encode_counters({5: 2.0, 9: 1.0}, k=4)
        payload = decode(envelope)
        assert payload.keys == [5, 9]
        assert np.array_equal(payload.key_array, [5, 9])

    def test_payload_requires_keys_or_key_array(self):
        from repro.api.wire import WirePayload

        with pytest.raises(ParameterError, match="key"):
            WirePayload(kind="counters", keys=None, values=np.zeros(0))
