"""Server fault paths: bad sessions are rejected, the server keeps serving.

Every test drives a real :class:`~repro.net.AggregatorServer` on an
ephemeral loopback port inside one event loop, misbehaves on one connection,
and then proves the server still accepts, folds and releases on a healthy
follow-up session.
"""

import asyncio

import pytest

from repro.api import framing
from repro.api.framing import FrameHeader
from repro.api.wire import encode_counters
from repro.exceptions import NetworkError, RemoteError
from repro.net import AggregatorClient, AggregatorServer
from repro.net.protocol import FrameChannel

pytestmark = pytest.mark.net

EPSILON, DELTA, K = 1.0, 1e-6, 16


def _export(counters):
    return encode_counters(counters, k=K, stream_length=int(sum(counters.values())))


async def _started_server(**kwargs):
    server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=K, **kwargs)
    await server.start("127.0.0.1:0")
    return server


async def _healthy_roundtrip(server, seed=3):
    """Push one export on a fresh session and release — the liveness probe."""
    async with AggregatorClient(server.address, k=K, ordinal=0) as client:
        await client.push([_export({1: 4000.0, 2: 2000.0})])
    async with AggregatorClient(server.address) as client:
        return await client.request_release(seed=seed)


async def _raw_channel(server):
    reader, writer = await asyncio.open_connection(*server.address.split(":"))
    channel = FrameChannel(reader, writer)
    await channel.send_prefix(FrameHeader(framing=framing.FRAMING_VERSION,
                                          frames=None, k=K))
    return channel


def _run(coroutine):
    return asyncio.run(coroutine)


class TestSessionRejection:
    def test_k_mismatch_session_rejected_server_survives(self):
        async def scenario():
            async with await _started_server() as server:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=K + 1):
                        pass
                assert caught.value.code == "k_mismatch"
                histogram = await _healthy_roundtrip(server)
                assert server.stats()["sessions_rejected"] == 1
                return histogram
        histogram = _run(scenario())
        assert histogram.metadata.sketch_size == K

    def test_envelope_k_mismatch_inside_push_rejected(self):
        """A session that agreed on k but ships a different-k export is cut:
        merging disagreeing sketch sizes would miscalibrate the release."""
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K, ordinal=0)
                await channel.read_prefix()
                await channel.next_event()  # ok re=hello
                await channel.send_control("push", frames=1)
                await channel.send_payload(
                    encode_counters({5: 500.0}, k=K + 4, stream_length=500))
                kind, value = await channel.next_event()
                await channel.close()
                histogram = await _healthy_roundtrip(server)
                return kind, value, histogram
        kind, value, histogram = _run(scenario())
        assert kind == "control" and value["verb"] == "error"
        assert value["code"] == "k_mismatch"
        assert 5 not in histogram  # the mismatched export contributed nothing

    def test_bad_magic_rejected_server_survives(self):
        async def scenario():
            async with await _started_server() as server:
                reader, writer = await asyncio.open_connection(
                    *server.address.split(":"))
                writer.write(b"JUNK!junkjunkjunk")
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                return await _healthy_roundtrip(server)
        assert len(_run(scenario())) >= 0

    def test_truncated_frame_mid_push_discards_session(self):
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K, ordinal=5)
                await channel.read_prefix()
                await channel.next_event()  # ok re=hello
                # Declare 2 frames, deliver 1, then vanish: the declared
                # burst is cut short -> FramingError -> session discarded.
                await channel.send_control("push", frames=2)
                await channel.send_payload(_export({9: 9.0}))
                await channel.close()
                await asyncio.sleep(0.05)
                histogram = await _healthy_roundtrip(server)
                stats = server.stats()
                return histogram, stats
        histogram, stats = _run(scenario())
        assert stats["sessions_rejected"] == 1
        assert stats["sessions_committed"] == 1
        assert 9 not in histogram  # the partial push contributed nothing

    def test_disconnect_mid_frame_discards_session(self):
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K, ordinal=5)
                await channel.read_prefix()
                await channel.next_event()
                await channel.send_control("push", frames=1)
                # Half a frame: a plausible length prefix, then half the body.
                body = framing.encode_payload_frame(_export({8: 8.0}))
                await channel.send_bytes(body[:len(body) // 2])
                await channel.close()
                await asyncio.sleep(0.05)
                histogram = await _healthy_roundtrip(server)
                return histogram, server.stats()
        histogram, stats = _run(scenario())
        assert stats["sessions_rejected"] == 1
        assert 8 not in histogram

    def test_payload_outside_push_burst_rejected(self):
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K)
                await channel.read_prefix()
                await channel.next_event()
                await channel.send_payload(_export({1: 1.0}))  # no push verb
                kind, value = await channel.next_event()
                await channel.close()
                await _healthy_roundtrip(server)
                return kind, value
        kind, value = _run(scenario())
        assert kind == "control" and value["verb"] == "error"
        assert "push" in value["message"]

    def test_unknown_verb_rejected(self):
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K)
                await channel.read_prefix()
                await channel.next_event()
                await channel.send_control("frobnicate")
                kind, value = await channel.next_event()
                await channel.close()
                return kind, value
        kind, value = _run(scenario())
        assert kind == "control" and value["verb"] == "error"

    def test_verb_before_hello_rejected(self):
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("push", frames=1)
                await channel.read_prefix()
                kind, value = await channel.next_event()
                await channel.close()
                return kind, value
        kind, value = _run(scenario())
        assert kind == "control" and value["verb"] == "error"
        assert "hello" in value["message"]


class TestReleaseSemantics:
    def test_release_with_nothing_committed_errors_cleanly(self):
        async def scenario():
            async with await _started_server() as server:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address) as client:
                        await client.request_release(seed=1)
                assert caught.value.code == "nothing_to_release"
                return await _healthy_roundtrip(server)
        assert _run(scenario()) is not None

    def test_concurrent_pushes_with_interleaved_release(self):
        """A RELEASE between pushes sees only committed sessions; later
        releases see everything; the server never goes down."""
        async def scenario():
            async with await _started_server() as server:
                async with AggregatorClient(server.address, k=K, ordinal=0) as first:
                    await first.push([_export({1: 1000.0})])
                # `first` committed.  Open two in-flight pushers that have
                # pushed but NOT committed yet, and release in between.
                second = AggregatorClient(server.address, k=K, ordinal=1)
                third = AggregatorClient(server.address, k=K, ordinal=2)
                await second.connect()
                await third.connect()
                await asyncio.gather(second.push([_export({2: 2000.0})]),
                                     third.push([_export({3: 3000.0})]))
                async with AggregatorClient(server.address) as querier:
                    early = await querier.request_release(seed=5)
                await second.close()
                await third.close()
                async with AggregatorClient(server.address) as querier:
                    late = await querier.request_release(seed=5)
                    stats = await querier.stats()
                return early, late, stats
        early, late, stats = _run(scenario())
        assert 1 in early and 2 not in early and 3 not in early
        assert 1 in late and 2 in late and 3 in late
        assert stats["releases"] == 2
        assert stats["sessions_committed"] == 3

    def test_releases_are_repeatable_and_seeded(self):
        async def scenario():
            async with await _started_server() as server:
                async with AggregatorClient(server.address, k=K, ordinal=0) as client:
                    await client.push([_export({1: 600.0, 2: 300.0})])
                async with AggregatorClient(server.address) as querier:
                    one = await querier.request_release(seed=11)
                    two = await querier.request_release(seed=11)
                    other = await querier.request_release(seed=12)
                return one, two, other
        one, two, other = _run(scenario())
        assert one.as_dict() == two.as_dict()
        assert one.metadata.epsilon == EPSILON
        assert other.as_dict() != one.as_dict() or True  # different seed may coincide


class TestLifecycle:
    def test_graceful_drain_waits_for_inflight_session(self):
        async def scenario():
            server = await _started_server(drain_timeout=5.0)
            client = AggregatorClient(server.address, k=K, ordinal=0)
            await client.connect()
            await client.push([_export({4: 400.0})])

            async def finish_later():
                await asyncio.sleep(0.1)
                await client.close()  # bye -> commit

            finisher = asyncio.ensure_future(finish_later())
            await server.aclose(drain=True)  # must wait for the bye
            await finisher
            return server.stats()
        stats = _run(scenario())
        assert stats["sessions_committed"] == 1

    def test_server_adopts_k_from_first_session(self):
        async def scenario():
            server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=None)
            await server.start("127.0.0.1:0")
            async with server:
                async with AggregatorClient(server.address, k=32, ordinal=0) as client:
                    await client.push([encode_counters({1: 2.0}, k=32)])
                    agreed = client.server_k
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=64):
                        pass
                return agreed, caught.value.code, server.k
        agreed, code, k = _run(scenario())
        assert agreed == 32 and k == 32 and code == "k_mismatch"

    def test_push_without_any_k_rejected(self):
        async def scenario():
            server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=None)
            await server.start("127.0.0.1:0")
            async with server:
                with pytest.raises(NetworkError):
                    # RemoteError when the error frame wins the race, plain
                    # NetworkError when the reset does; both are NetworkError.
                    async with AggregatorClient(server.address) as client:
                        await client.push([encode_counters({1: 2.0})])
        _run(scenario())

    def test_bye_ack_reports_committed_frame_count(self):
        """The BYE ack is the client's commit receipt; it must carry the
        session's frame count (regression: it read the merger post-handoff
        and always said 0)."""
        async def scenario():
            async with await _started_server() as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K, ordinal=0)
                await channel.read_prefix()
                await channel.next_event()
                await channel.send_control("push", frames=2)
                await channel.send_payload(_export({1: 100.0}))
                await channel.send_payload(_export({2: 200.0}))
                await channel.next_event()  # ok re=push
                await channel.send_control("bye")
                kind, value = await channel.next_event()
                await channel.close()
                return kind, value
        kind, value = _run(scenario())
        assert kind == "control"
        assert value["verb"] == "ok" and value["re"] == "bye"
        assert value["frames"] == 2

    def test_push_file_streams_in_bounded_bursts(self, tmp_path):
        """push_file must not buffer the whole packed file: with burst=1 a
        3-frame file arrives as 3 PUSH bursts in one session, all folded."""
        import io

        from repro.api.framing import FrameWriter

        packed = tmp_path / "exports.frames"
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=K, frames=3) as writer:
            for key in (1, 2, 3):
                writer.write_payload(_export({key: 100.0 * key}))
        packed.write_bytes(buffer.getvalue())

        async def scenario():
            async with await _started_server() as server:
                async with AggregatorClient(server.address, k=K,
                                            ordinal=0) as client:
                    pushed = await client.push_file(packed, burst=1)
                return pushed, server.stats()
        pushed, stats = _run(scenario())
        assert pushed == 3
        assert stats["frames"] == 3

    def test_stats_verb_reports_counters(self):
        async def scenario():
            async with await _started_server() as server:
                async with AggregatorClient(server.address, k=K, ordinal=0) as client:
                    await client.push([_export({1: 2.0}), _export({2: 4.0})])
                    stats = await client.stats()
                return stats
        stats = _run(scenario())
        assert stats["frames"] == 2
        assert stats["k"] == K
        # Per-release cost moved under the privacy stanza when the
        # accountant landed; top-level epsilon/delta no longer exist.
        assert "epsilon" not in stats
        assert stats["privacy"]["per_release"]["epsilon"] == EPSILON
        assert stats["privacy"]["per_release"]["delta"] == DELTA
        assert stats["privacy"]["budget"] is None
        assert stats["auth_required"] is False

    def test_client_timeout_raises_network_error(self):
        async def scenario():
            # A listener that accepts and never speaks: the handshake must
            # time out instead of hanging.
            async def mute(reader, writer):
                await asyncio.sleep(10)

            server = await asyncio.start_server(mute, host="127.0.0.1", port=0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(NetworkError, match="timed out"):
                    client = AggregatorClient(f"{host}:{port}", k=K, timeout=0.3,
                                              connect_retries=1)
                    await client.connect()
            finally:
                server.close()
                await server.wait_closed()
        _run(scenario())

    def test_connect_refused_raises_after_retries(self):
        with pytest.raises(NetworkError, match="attempt"):
            _run(AggregatorClient("127.0.0.1:1", timeout=0.5, connect_retries=2,
                                  retry_delay=0.01).connect())


class TestSlowLoris:
    """Per-read timeout: a byte-dribbling peer is rejected, not serviced."""

    def test_dribbler_times_out_while_healthy_session_commits(self):
        async def scenario():
            async with await _started_server(read_timeout=0.3) as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K, ordinal=9)
                await channel.read_prefix()
                await channel.next_event()  # ok re=hello
                await channel.send_control("push", frames=1)
                frame = framing.encode_payload_frame(_export({6: 600.0}))

                async def dribble():
                    # One byte per 0.15s against a 0.3s per-read timeout: the
                    # frame can never complete before the watchdog fires.
                    try:
                        for offset in range(8):
                            await channel.send_bytes(frame[offset:offset + 1])
                            await asyncio.sleep(0.15)
                    except (ConnectionError, OSError):
                        pass  # server already cut us off

                async def healthy():
                    # A well-behaved concurrent session, slower than the
                    # dribbler's timeout window, must commit unaffected.
                    await asyncio.sleep(0.1)
                    async with AggregatorClient(server.address, k=K,
                                                ordinal=0) as client:
                        await client.push([_export({1: 4000.0})])

                dribbler = asyncio.ensure_future(dribble())
                (kind, value), _ = await asyncio.gather(
                    channel.next_event(), healthy())
                dribbler.cancel()
                await channel.close()
                histogram = await _healthy_roundtrip(server)
                return kind, value, server.stats(), histogram
        kind, value, stats, histogram = _run(scenario())
        assert kind == "control" and value["verb"] == "error"
        assert value["code"] == "timeout"
        assert "slow-loris" in value["message"]
        assert stats["sessions_rejected"] == 1
        assert 6 not in histogram       # the dribbled frame was never folded
        assert 1 in histogram           # the healthy session's data is there

    def test_silent_connection_is_reaped(self):
        async def scenario():
            async with await _started_server(read_timeout=0.2) as server:
                reader, writer = await asyncio.open_connection(
                    *server.address.split(":"))
                # Say nothing at all: the stream-header read must time out
                # and the server must close the transport.
                leftovers = await reader.read()
                writer.close()
                await writer.wait_closed()
                histogram = await _healthy_roundtrip(server)
                return leftovers, server.stats(), histogram
        leftovers, stats, histogram = _run(scenario())
        assert leftovers is not None    # EOF reached, no hang
        assert stats["sessions_rejected"] == 1
        assert 1 in histogram

    def test_read_timeout_none_disables_the_watchdog(self):
        async def scenario():
            async with await _started_server(read_timeout=None) as server:
                channel = await _raw_channel(server)
                await channel.send_control("hello", k=K, ordinal=9)
                await channel.read_prefix()
                await channel.next_event()
                await asyncio.sleep(0.4)  # longer than any default test pace
                await channel.send_control("push", frames=1)
                await channel.send_payload(_export({6: 600.0}))
                kind, value = await channel.next_event()
                await channel.close()
                return kind, value
        kind, value = _run(scenario())
        assert kind == "control" and value["verb"] == "ok"
