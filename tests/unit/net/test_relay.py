"""Relay tier units: role gating, summary frames, forward queue, stats.

Everything here drives real servers on ephemeral loopback ports inside one
event loop — a root (``accept_relays``) plus one or more
:class:`~repro.net.RelayAggregatorServer` leaves — and asserts the pieces
the end-to-end property suite (``tests/property/test_net_equivalence.py``)
builds on: relay sessions are opt-in, each forwarded summary frame folds
into its own release part, the durable forward queue survives restarts
without re-forwarding, and STATS exposes the forward state.
"""

import asyncio

import pytest

from repro.api.framing import StreamingMerger, summary_payload
from repro.api.wire import decode, encode_counters
from repro.exceptions import FramingError, ParameterError, RemoteError
from repro.net import (
    AggregatorClient,
    AggregatorServer,
    RelayAggregatorServer,
)
from repro.net.relay import ANON_OFFSET, STRIDE

pytestmark = pytest.mark.net

EPSILON, DELTA, K = 1.0, 1e-6, 16


def _export(counters, stream_length=None):
    if stream_length is None:
        stream_length = int(sum(counters.values()))
    return encode_counters(counters, k=K, stream_length=stream_length)


def _run(coroutine):
    return asyncio.run(coroutine)


async def _started_root(**kwargs):
    kwargs.setdefault("accept_relays", True)
    server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=K, **kwargs)
    await server.start("127.0.0.1:0")
    return server


async def _started_relay(upstream, **kwargs):
    relay = RelayAggregatorServer(epsilon=EPSILON, delta=DELTA, k=K,
                                  upstream=upstream, **kwargs)
    await relay.start("127.0.0.1:0")
    return relay


class TestSummaryFrames:
    def test_summary_payload_is_a_fold_fixed_point(self):
        merger = StreamingMerger(K)
        merger.add(_export({1: 10.0, 2: 6.0}))
        merger.add(_export({1: 3.0, 5: 4.0}))
        envelope = summary_payload(merger)
        refolded = StreamingMerger(K).add_summary(envelope)
        assert refolded.merged() == merger.merged()
        assert list(refolded.merged().items()) == list(merger.merged().items())
        assert refolded.frames == merger.frames == 2
        assert refolded.total_stream_length == merger.total_stream_length

    def test_summary_payload_declares_origin_frames(self):
        merger = StreamingMerger(K)
        for index in range(3):
            merger.add(_export({index: 2.0}))
        envelope = summary_payload(merger)
        assert envelope["meta"]["relay"] == {"frames": 3}

    def test_summary_of_empty_merger_rejected(self):
        with pytest.raises(ParameterError):
            summary_payload(StreamingMerger(K))

    def test_add_summary_rejects_bad_origin_frame_count(self):
        envelope = _export({1: 2.0})
        envelope["meta"]["relay"] = {"frames": 0}
        with pytest.raises(FramingError):
            StreamingMerger(K).add_summary(envelope)

    def test_add_summary_accepts_decoded_payloads(self):
        envelope = summary_payload(StreamingMerger(K).add(_export({7: 9.0})))
        merger = StreamingMerger(K).add_summary(decode(envelope))
        assert merger.merged() == {7: 9.0}
        assert merger.frames == 1


class TestRoleGating:
    def test_relay_session_rejected_without_accept_relays(self):
        async def scenario():
            async with await _started_root(accept_relays=False) as server:
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=K,
                                                role="relay"):
                        pass
                assert caught.value.code == "relay_not_accepted"
                # The server survives and still serves plain sessions.
                async with AggregatorClient(server.address, k=K,
                                            ordinal=0) as client:
                    await client.push([_export({1: 5.0})])
                assert server.stats()["sessions_committed"] == 1
        _run(scenario())

    def test_unknown_role_rejected(self):
        async def scenario():
            async with await _started_root() as server:
                with pytest.raises(RemoteError):
                    async with AggregatorClient(server.address, k=K,
                                                role="observer"):
                        pass
        _run(scenario())

    def test_relay_role_resume_mismatch_rejected(self, tmp_path):
        """A WAL ordinal spooled as a relay session cannot be resumed as a
        plain client: the frames would fold with the wrong granularity."""
        from repro.api import framing as framing_module
        from repro.api.framing import FrameHeader
        from repro.net.protocol import FrameChannel

        async def scenario():
            async with await _started_root(
                    wal_dir=tmp_path / "wal") as server:
                # A relay session that commits one durable burst and then
                # dies mid-push: its ledger record stays open (resumable).
                host, port = server.address.split(":")
                reader, writer = await asyncio.open_connection(host, int(port))
                channel = FrameChannel(reader, writer)
                await channel.send_prefix(FrameHeader(
                    framing=framing_module.FRAMING_VERSION, frames=None, k=K))
                await channel.send_control("hello", k=K, ordinal=3,
                                           role="relay")
                await channel.read_prefix()
                await channel.next_event()  # ok re=hello
                await channel.send_control("push", frames=1)
                await channel.send_payload(summary_payload(
                    StreamingMerger(K).add(_export({1: 5.0}))))
                await channel.next_event()  # ok re=push (durable)
                await channel.send_control("push", frames=2)
                await channel.send_payload(summary_payload(
                    StreamingMerger(K).add(_export({2: 5.0}))))
                await channel.close()  # burst cut short -> session rejected
                await asyncio.sleep(0.05)
                with pytest.raises(RemoteError) as caught:
                    async with AggregatorClient(server.address, k=K,
                                                ordinal=3):
                        pass
                assert caught.value.code == "role_mismatch"
                # Resuming with the matching role still works.
                async with AggregatorClient(server.address, k=K, ordinal=3,
                                            role="relay") as client:
                    assert client.committed == 1
        _run(scenario())

    def test_bad_relay_parameters_rejected(self):
        with pytest.raises(ParameterError):
            RelayAggregatorServer(EPSILON, DELTA, K, upstream="127.0.0.1:1",
                                  forward_on="sometimes")
        with pytest.raises(ParameterError):
            RelayAggregatorServer(EPSILON, DELTA, K, upstream="127.0.0.1:1",
                                  relay_ordinal=-1)


class TestRelayForwarding:
    def test_release_through_leaf_forwards_and_proxies(self):
        async def scenario():
            async with await _started_root() as root:
                relay = await _started_relay(root.address)
                try:
                    async with AggregatorClient(relay.address, k=K,
                                                ordinal=0) as client:
                        await client.push([_export({1: 500.0, 2: 300.0})])
                    async with AggregatorClient(relay.address) as client:
                        histogram = await client.request_release(seed=5)
                    # The root folded the forwarded summary as its own part
                    # and served the actual release.
                    root_stats = root.stats()
                    assert root_stats["sessions_committed"] == 1
                    assert root_stats["releases"] == 1
                    assert root_stats["sessions"][0]["ordinal"] == 0
                    assert root_stats["sessions"][0]["client"] == "relay-0"
                    direct = await AggregatorClient(
                        root.address).connect()
                    try:
                        again = await direct.request_release_payload(5)
                    finally:
                        await direct.close()
                    assert histogram.metadata.stream_length == 800
                    assert decode(
                        summary_payload(StreamingMerger(K).add(
                            _export({1: 500.0, 2: 300.0})))).stream_length == 800
                    assert again.stream_length == 800
                finally:
                    await relay.aclose()
        _run(scenario())

    def test_forward_on_commit_pushes_eagerly(self):
        async def scenario():
            async with await _started_root() as root:
                relay = await _started_relay(root.address, forward_on="commit")
                try:
                    async with AggregatorClient(relay.address, k=K,
                                                ordinal=2) as client:
                        await client.push([_export({4: 100.0})])
                    # The eager forward runs as a background task; wait for
                    # the root to see the committed relay session.
                    for _ in range(200):
                        if root.stats()["sessions_committed"]:
                            break
                        await asyncio.sleep(0.01)
                    root_stats = root.stats()
                    assert root_stats["sessions_committed"] == 1
                    assert root_stats["sessions"][0]["ordinal"] == 2
                    assert relay.stats()["forward"]["acked"] == 1
                finally:
                    await relay.aclose()
        _run(scenario())

    def test_root_ordinals_embed_leaf_position(self):
        async def scenario():
            async with await _started_root() as root:
                relay = await _started_relay(root.address, relay_ordinal=3)
                try:
                    async with AggregatorClient(relay.address, k=K,
                                                ordinal=7) as client:
                        await client.push([_export({1: 9.0})])
                    # Anonymous sessions land in the leaf's counter band.
                    async with AggregatorClient(relay.address, k=K) as client:
                        await client.push([_export({2: 8.0})])
                    await relay.forward_flush()
                    ordinals = [entry["ordinal"]
                                for entry in root.stats()["sessions"]]
                    assert ordinals == [3 * STRIDE + 7,
                                        3 * STRIDE + ANON_OFFSET + 0]
                finally:
                    await relay.aclose()
        _run(scenario())

    def test_relay_frames_count_origin_exports(self):
        """A relay session pushing one summary of F origin frames must leave
        the root's frame counters at F, same as the flat server's."""
        async def scenario():
            async with await _started_root() as root:
                relay = await _started_relay(root.address)
                try:
                    async with AggregatorClient(relay.address, k=K,
                                                ordinal=0) as client:
                        await client.push([_export({1: 5.0}),
                                           _export({1: 3.0}),
                                           _export({2: 4.0})])
                    await relay.forward_flush()
                    root_stats = root.stats()
                    assert root_stats["frames"] == 3
                    assert root_stats["sessions"][0]["frames"] == 3
                finally:
                    await relay.aclose()
        _run(scenario())


class TestForwardQueueDurability:
    def test_staged_batches_survive_restart_without_refolding(self, tmp_path):
        """A leaf killed after staging (upstream down) re-pushes the staged
        batch on restart — and never re-batches the same commit seq."""
        wal_dir = tmp_path / "leafwal"

        async def stage_with_upstream_down():
            relay = RelayAggregatorServer(
                epsilon=EPSILON, delta=DELTA, k=K,
                upstream="127.0.0.1:1",  # nothing listens here
                wal_dir=wal_dir, forward_max_elapsed=0.2)
            await relay.start("127.0.0.1:0")
            try:
                async with AggregatorClient(relay.address, k=K,
                                            ordinal=0) as client:
                    await client.push([_export({1: 700.0, 2: 100.0})])
                with pytest.raises(Exception):
                    await relay.forward_flush()
                stats = relay.stats()["forward"]
                assert stats["queued"] == 1
                assert stats["acked"] == 0
            finally:
                await relay.aclose()

        _run(stage_with_upstream_down())
        staged = sorted(p.name for p in (wal_dir / "forward").iterdir())
        assert staged == ["fwd-00000000.frames"]

        async def restart_and_release():
            async with await _started_root() as root:
                relay = RelayAggregatorServer(
                    epsilon=EPSILON, delta=DELTA, k=K,
                    upstream=root.address, wal_dir=wal_dir)
                await relay.start("127.0.0.1:0")
                try:
                    # WAL recovery restored the committed session; the
                    # forward-queue scan must see it as already batched.
                    assert relay.stats()["forward"]["queued"] == 1
                    async with AggregatorClient(relay.address) as client:
                        histogram = await client.request_release(seed=11)
                    assert root.stats()["sessions_committed"] == 1
                    assert root.stats()["frames"] == 1
                    assert relay.stats()["forward"] == {
                        **relay.stats()["forward"],
                        "queued": 0, "acked": 1, "error": None}
                    return histogram
                finally:
                    await relay.aclose()

        histogram = _run(restart_and_release())
        assert histogram.metadata.stream_length == 800
        acked = sorted(p.name for p in (wal_dir / "forward").iterdir())
        assert acked == ["fwd-00000000.frames.acked"]

    def test_acked_batches_never_repush(self, tmp_path):
        wal_dir = tmp_path / "leafwal"

        async def first_run():
            async with await _started_root(
                    wal_dir=tmp_path / "rootwal") as root:
                relay = RelayAggregatorServer(
                    epsilon=EPSILON, delta=DELTA, k=K,
                    upstream=root.address, wal_dir=wal_dir)
                await relay.start("127.0.0.1:0")
                try:
                    async with AggregatorClient(relay.address, k=K,
                                                ordinal=0) as client:
                        await client.push([_export({3: 50.0})])
                    await relay.forward_flush()
                    return root.address
                finally:
                    await relay.aclose()

        _run(first_run())

        async def second_run():
            async with await _started_root(
                    wal_dir=tmp_path / "rootwal") as root:
                relay = RelayAggregatorServer(
                    epsilon=EPSILON, delta=DELTA, k=K,
                    upstream=root.address, wal_dir=wal_dir)
                await relay.start("127.0.0.1:0")
                try:
                    assert await relay.forward_flush() == 0  # nothing to do
                    stats = root.stats()
                    assert stats["sessions_committed"] == 1  # WAL replay only
                    assert stats["frames"] == 1
                finally:
                    await relay.aclose()

        _run(second_run())


class TestStats:
    def test_plain_server_stats_expose_sessions_and_uptime(self):
        async def scenario():
            async with await _started_root(accept_relays=False) as server:
                async with AggregatorClient(server.address, k=K,
                                            ordinal=5, client_name="srv5") as c:
                    await c.push([_export({1: 4.0}), _export({2: 2.0})])
                async with AggregatorClient(server.address, k=K) as c:
                    await c.push([_export({3: 1.0})])
                async with AggregatorClient(server.address) as client:
                    stats = await client.stats()
                assert stats["role"] == "aggregator"
                assert stats["accept_relays"] is False
                assert isinstance(stats["uptime"], float)
                assert stats["uptime"] >= 0.0
                # Committed sessions in canonical (ordinal, commit) order,
                # each with its committed frame count.
                assert stats["sessions"] == [
                    {"ordinal": 5, "client": "srv5", "frames": 2, "seq": 1},
                    {"ordinal": None, "client": None, "frames": 1, "seq": 2},
                ]
        _run(scenario())

    def test_relay_stats_expose_forward_state(self):
        async def scenario():
            async with await _started_root() as root:
                relay = await _started_relay(root.address, relay_ordinal=1)
                try:
                    async with AggregatorClient(relay.address, k=K,
                                                ordinal=0) as client:
                        await client.push([_export({1: 2.0})])
                    before = relay.stats()
                    assert before["role"] == "relay"
                    forward = before["forward"]
                    assert forward["upstream"] == root.address
                    assert forward["policy"] == "release"
                    assert forward["relay_ordinal"] == 1
                    assert forward["queued"] == 1
                    assert forward["acked"] == 0
                    assert forward["last_backoff"] is None
                    await relay.forward_flush()
                    after = relay.stats()["forward"]
                    assert after["queued"] == 0
                    assert after["acked"] == 1
                finally:
                    await relay.aclose()
        _run(scenario())

    def test_relay_stats_surface_forward_errors(self):
        async def scenario():
            relay = RelayAggregatorServer(
                epsilon=EPSILON, delta=DELTA, k=K,
                upstream="127.0.0.1:1", forward_on="commit",
                forward_max_elapsed=0.2)
            await relay.start("127.0.0.1:0")
            try:
                async with AggregatorClient(relay.address, k=K,
                                            ordinal=0) as client:
                    await client.push([_export({1: 2.0})])
                for _ in range(300):
                    if relay.stats()["forward"]["error"]:
                        break
                    await asyncio.sleep(0.01)
                forward = relay.stats()["forward"]
                assert forward["error"] is not None
                assert "retry budget" in forward["error"]
                assert forward["queued"] == 1
            finally:
                await relay.aclose()
        _run(scenario())
