"""Unit tests for the jittered, budget-capped backoff policy.

Everything runs on an injected fake clock and a scripted rng — no real
sleeps, no wall-clock dependence: the tests advance time exactly as a retry
loop would (each handed-out delay is "slept" by bumping the fake clock).
"""

import pytest

from repro.exceptions import ParameterError
from repro.net.backoff import Backoff


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def _backoff(clock, **kwargs):
    kwargs.setdefault("rng", lambda: 0.0)  # jitter off unless scripted
    return Backoff(clock=clock, **kwargs)


class TestDelaySchedule:
    def test_delays_grow_exponentially_from_base(self):
        backoff = _backoff(FakeClock(), base=0.1, factor=2.0, max_delay=100.0,
                           jitter=0.0)
        assert [backoff.next_delay() for _ in range(4)] == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.4), pytest.approx(0.8)]
        assert backoff.attempts == 4

    def test_max_delay_caps_the_schedule(self):
        backoff = _backoff(FakeClock(), base=1.0, factor=10.0, max_delay=5.0,
                           jitter=0.0)
        assert backoff.next_delay() == pytest.approx(1.0)
        assert backoff.next_delay() == pytest.approx(5.0)  # 10.0 capped
        assert backoff.next_delay() == pytest.approx(5.0)  # stays capped

    def test_jitter_only_stretches_never_shrinks(self):
        """base is a floor: jitter multiplies by 1 + jitter*U, U in [0, 1)."""
        draws = iter([0.0, 0.999, 0.5])
        backoff = Backoff(base=2.0, factor=1.0, max_delay=10.0, jitter=0.5,
                          clock=FakeClock(), rng=lambda: next(draws))
        low = backoff.next_delay()
        high = backoff.next_delay()
        mid = backoff.next_delay()
        assert low == pytest.approx(2.0)          # U=0 -> exactly base
        assert high == pytest.approx(2.0 * 1.4995)
        assert mid == pytest.approx(2.0 * 1.25)
        for delay in (low, high, mid):
            assert 2.0 <= delay <= 2.0 * 1.5      # floor and ceiling

    def test_zero_jitter_is_deterministic(self):
        first = _backoff(FakeClock(), base=0.3, jitter=0.0)
        second = _backoff(FakeClock(), base=0.3, jitter=0.0)
        assert [first.next_delay() for _ in range(5)] == \
               [second.next_delay() for _ in range(5)]


class TestMaxElapsedBudget:
    def test_budget_exhaustion_returns_none(self):
        clock = FakeClock()
        backoff = _backoff(clock, base=1.0, factor=1.0, max_delay=1.0,
                           jitter=0.0, max_elapsed=3.5)
        slept = 0.0
        while True:
            delay = backoff.next_delay()
            if delay is None:
                break
            clock.sleep(delay)
            slept += delay
        # 1s + 1s + 1s, then the 4th delay is clamped to the remaining 0.5s,
        # then the budget is spent.
        assert slept == pytest.approx(3.5)
        assert backoff.attempts == 4

    def test_delay_never_overshoots_remaining_budget(self):
        clock = FakeClock()
        backoff = _backoff(clock, base=10.0, max_delay=10.0, jitter=0.0,
                           max_elapsed=4.0)
        delay = backoff.next_delay()
        assert delay == pytest.approx(4.0)  # clamped from 10 to the budget
        clock.sleep(delay)
        assert backoff.next_delay() is None

    def test_elapsed_time_outside_sleeps_counts_against_budget(self):
        """Connect attempts take time too; the budget is wall-clock, not
        sleep-clock."""
        clock = FakeClock()
        backoff = _backoff(clock, base=0.1, jitter=0.0, max_elapsed=5.0)
        clock.sleep(6.0)  # a slow failed connect burned the whole budget
        assert backoff.next_delay() is None
        assert backoff.elapsed == pytest.approx(6.0)

    def test_no_budget_means_unbounded_attempts(self):
        clock = FakeClock()
        backoff = _backoff(clock, base=0.1, max_delay=0.1, jitter=0.0,
                           max_elapsed=None)
        for _ in range(1000):
            delay = backoff.next_delay()
            assert delay is not None
            clock.sleep(delay)
        assert backoff.attempts == 1000


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base": 0.0},
        {"base": -1.0},
        {"factor": 0.5},
        {"base": 2.0, "max_delay": 1.0},
        {"jitter": -0.1},
        {"max_elapsed": 0.0},
        {"max_elapsed": -3.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            Backoff(**kwargs)
