"""Unit tests for the jittered, budget-capped backoff policy.

Everything runs on an injected fake clock and a scripted rng — no real
sleeps, no wall-clock dependence: the tests advance time exactly as a retry
loop would (each handed-out delay is "slept" by bumping the fake clock).
"""

import asyncio

import pytest

from repro.exceptions import NetworkError, ParameterError
from repro.net.backoff import Backoff, retry_async


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def _backoff(clock, **kwargs):
    kwargs.setdefault("rng", lambda: 0.0)  # jitter off unless scripted
    return Backoff(clock=clock, **kwargs)


class TestDelaySchedule:
    def test_delays_grow_exponentially_from_base(self):
        backoff = _backoff(FakeClock(), base=0.1, factor=2.0, max_delay=100.0,
                           jitter=0.0)
        assert [backoff.next_delay() for _ in range(4)] == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.4), pytest.approx(0.8)]
        assert backoff.attempts == 4

    def test_max_delay_caps_the_schedule(self):
        backoff = _backoff(FakeClock(), base=1.0, factor=10.0, max_delay=5.0,
                           jitter=0.0)
        assert backoff.next_delay() == pytest.approx(1.0)
        assert backoff.next_delay() == pytest.approx(5.0)  # 10.0 capped
        assert backoff.next_delay() == pytest.approx(5.0)  # stays capped

    def test_jitter_only_stretches_never_shrinks(self):
        """base is a floor: jitter multiplies by 1 + jitter*U, U in [0, 1)."""
        draws = iter([0.0, 0.999, 0.5])
        backoff = Backoff(base=2.0, factor=1.0, max_delay=10.0, jitter=0.5,
                          clock=FakeClock(), rng=lambda: next(draws))
        low = backoff.next_delay()
        high = backoff.next_delay()
        mid = backoff.next_delay()
        assert low == pytest.approx(2.0)          # U=0 -> exactly base
        assert high == pytest.approx(2.0 * 1.4995)
        assert mid == pytest.approx(2.0 * 1.25)
        for delay in (low, high, mid):
            assert 2.0 <= delay <= 2.0 * 1.5      # floor and ceiling

    def test_zero_jitter_is_deterministic(self):
        first = _backoff(FakeClock(), base=0.3, jitter=0.0)
        second = _backoff(FakeClock(), base=0.3, jitter=0.0)
        assert [first.next_delay() for _ in range(5)] == \
               [second.next_delay() for _ in range(5)]


class TestMaxElapsedBudget:
    def test_budget_exhaustion_returns_none(self):
        clock = FakeClock()
        backoff = _backoff(clock, base=1.0, factor=1.0, max_delay=1.0,
                           jitter=0.0, max_elapsed=3.5)
        slept = 0.0
        while True:
            delay = backoff.next_delay()
            if delay is None:
                break
            clock.sleep(delay)
            slept += delay
        # 1s + 1s + 1s, then the 4th delay is clamped to the remaining 0.5s,
        # then the budget is spent.
        assert slept == pytest.approx(3.5)
        assert backoff.attempts == 4

    def test_delay_never_overshoots_remaining_budget(self):
        clock = FakeClock()
        backoff = _backoff(clock, base=10.0, max_delay=10.0, jitter=0.0,
                           max_elapsed=4.0)
        delay = backoff.next_delay()
        assert delay == pytest.approx(4.0)  # clamped from 10 to the budget
        clock.sleep(delay)
        assert backoff.next_delay() is None

    def test_elapsed_time_outside_sleeps_counts_against_budget(self):
        """Connect attempts take time too; the budget is wall-clock, not
        sleep-clock."""
        clock = FakeClock()
        backoff = _backoff(clock, base=0.1, jitter=0.0, max_elapsed=5.0)
        clock.sleep(6.0)  # a slow failed connect burned the whole budget
        assert backoff.next_delay() is None
        assert backoff.elapsed == pytest.approx(6.0)

    def test_no_budget_means_unbounded_attempts(self):
        clock = FakeClock()
        backoff = _backoff(clock, base=0.1, max_delay=0.1, jitter=0.0,
                           max_elapsed=None)
        for _ in range(1000):
            delay = backoff.next_delay()
            assert delay is not None
            clock.sleep(delay)
        assert backoff.attempts == 1000


class TestRetryAsync:
    """The shared retry loop (client connect, resilient push, relay forward)
    on a fake clock and a fake sleep — zero real waiting."""

    def _run_loop(self, attempt, *, max_attempts=None, max_elapsed=None,
                  retryable=(NetworkError,)):
        clock = FakeClock()
        backoff = _backoff(clock, base=0.1, factor=2.0, max_delay=5.0,
                           jitter=0.0, max_elapsed=max_elapsed)
        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)
            clock.sleep(seconds)

        def give_up(last, attempts, policy):
            error = NetworkError(
                f"gave up after {attempts} attempt(s): {last}")
            error.attempts = attempts
            return error

        async def runner():
            return await retry_async(attempt, backoff=backoff,
                                     retryable=retryable,
                                     max_attempts=max_attempts,
                                     give_up=give_up, sleep=fake_sleep)
        return asyncio.run(runner()), slept

    def test_success_after_transient_failures(self):
        calls = []

        async def attempt():
            calls.append(1)
            if len(calls) < 3:
                raise NetworkError("transient")
            return "done"

        result, slept = self._run_loop(attempt)
        assert result == "done"
        assert len(calls) == 3
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_non_retryable_error_propagates_immediately(self):
        async def attempt():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            self._run_loop(attempt)

    def test_predicate_retryable_classification(self):
        attempts = []

        async def attempt():
            attempts.append(1)
            error = NetworkError("nope")
            error.flag = len(attempts) > 1
            raise error

        def only_first(error):
            return not getattr(error, "flag", False)

        with pytest.raises(NetworkError) as caught:
            self._run_loop(attempt, retryable=only_first)
        # Second failure is classified permanent: no give_up wrapper.
        assert "gave up" not in str(caught.value)
        assert len(attempts) == 2

    def test_max_attempts_exhaustion_raises_give_up(self):
        async def attempt():
            raise NetworkError("still down")

        with pytest.raises(NetworkError) as caught:
            self._run_loop(attempt, max_attempts=4)
        assert caught.value.attempts == 4
        assert "still down" in str(caught.value)

    def test_budget_exhaustion_raises_give_up_without_final_sleep(self):
        async def attempt():
            raise NetworkError("still down")

        with pytest.raises(NetworkError):
            self._run_loop(attempt, max_elapsed=0.5)
        # No sleep is ever taken once the budget says None.


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base": 0.0},
        {"base": -1.0},
        {"factor": 0.5},
        {"base": 2.0, "max_delay": 1.0},
        {"jitter": -0.1},
        {"max_elapsed": 0.0},
        {"max_elapsed": -3.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            Backoff(**kwargs)
