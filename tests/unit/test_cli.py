"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sketches import load_histogram, load_sketch


@pytest.fixture
def workspace(tmp_path):
    """Generate a small stream + sketch + histogram pipeline on disk."""
    stream_path = tmp_path / "stream.txt"
    sketch_path = tmp_path / "sketch.json"
    histogram_path = tmp_path / "hist.json"
    assert main(["generate", "--dataset", "zipf", "-n", "3000", "--universe", "300",
                 "--seed", "1", "--out", str(stream_path)]) == 0
    assert main(["sketch", "--stream", str(stream_path), "-k", "32",
                 "--out", str(sketch_path)]) == 0
    assert main(["release", "--sketch", str(sketch_path), "--epsilon", "1.0",
                 "--delta", "1e-6", "--seed", "0", "--out", str(histogram_path)]) == 0
    return tmp_path, stream_path, sketch_path, histogram_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("generate", "sketch", "release", "merge", "heavy-hitters", "evaluate"):
            assert command in parser.format_help()


class TestPipeline:
    def test_generate_writes_stream(self, tmp_path):
        out = tmp_path / "s.txt"
        assert main(["generate", "--dataset", "uniform", "-n", "100", "--universe", "10",
                     "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 100

    def test_generate_named_dataset(self, tmp_path):
        out = tmp_path / "flows.txt"
        assert main(["generate", "--dataset", "network_flows", "-n", "500",
                     "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 500

    def test_sketch_and_release(self, workspace):
        _, _, sketch_path, histogram_path = workspace
        sketch = load_sketch(sketch_path)
        assert sketch.size == 32
        histogram = load_histogram(histogram_path)
        assert histogram.metadata.mechanism == "PMG"
        assert len(histogram) >= 1

    def test_release_to_stdout(self, workspace, capsys):
        _, _, sketch_path, _ = workspace
        assert main(["release", "--sketch", str(sketch_path), "--epsilon", "1.0",
                     "--delta", "1e-6", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "private_histogram"

    def test_pure_dp_release_requires_universe(self, workspace, capsys):
        _, _, sketch_path, _ = workspace
        assert main(["release", "--sketch", str(sketch_path), "--epsilon", "1.0"]) == 2
        assert main(["release", "--sketch", str(sketch_path), "--epsilon", "1.0",
                     "--universe", "300", "--seed", "2"]) == 0

    def test_heavy_hitters_output(self, workspace, capsys):
        _, _, _, histogram_path = workspace
        assert main(["heavy-hitters", "--histogram", str(histogram_path),
                     "--phi", "0.02", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "heavy hitters" in output
        assert "element" in output

    def test_evaluate_output(self, workspace, capsys):
        _, stream_path, _, histogram_path = workspace
        assert main(["evaluate", "--histogram", str(histogram_path),
                     "--stream", str(stream_path)]) == 0
        assert "max_error" in capsys.readouterr().out

    def test_merge_command(self, workspace, tmp_path):
        _, _, sketch_path, _ = workspace
        merged_path = tmp_path / "merged.json"
        assert main(["merge", "--epsilon", "1.0", "--delta", "1e-6", "-k", "32",
                     "--seed", "3", "--out", str(merged_path),
                     str(sketch_path), str(sketch_path)]) == 0
        merged = load_histogram(merged_path)
        assert "Merged" in merged.metadata.mechanism

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["sketch", "--stream", str(tmp_path / "missing.txt"), "-k", "4",
                     "--out", str(tmp_path / "x.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestListBackends:
    def test_backends_listing_reports_the_kernel_tier(self, capsys):
        from repro import kernels

        assert main(["list", "--backends"]) == 0
        output = capsys.readouterr().out
        info = kernels.kernel_info()
        assert f"resolved backend: {info['backend']}" in output
        for provider in ("numba", "cc", "python"):
            assert provider in output
        for kernel in kernels.KERNEL_NAMES:
            assert kernel in output

    def test_backends_listing_honours_the_env_override(self, monkeypatch, capsys):
        from repro import kernels

        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert main(["list", "--backends"]) == 0
        assert "resolved backend: python" in capsys.readouterr().out
