"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.dp.rng import ensure_rng, spawn_rngs
from repro.exceptions import ParameterError


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_rejects_negative_seed(self):
        with pytest.raises(ParameterError):
            ensure_rng(-1)

    def test_rejects_bool_and_other_types(self):
        with pytest.raises(ParameterError):
            ensure_rng(True)
        with pytest.raises(ParameterError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count_and_type(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4
        assert all(isinstance(child, np.random.Generator) for child in children)

    def test_children_reproducible_from_seed(self):
        first = [child.random() for child in spawn_rngs(7, 3)]
        second = [child.random() for child in spawn_rngs(7, 3)]
        assert first == second

    def test_children_mutually_independent(self):
        values = [child.random() for child in spawn_rngs(0, 5)]
        assert len(set(values)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            spawn_rngs(0, -1)
