"""Unit tests for the sensitivity tooling."""

import math

import pytest

from repro.dp.sensitivity import (
    all_streams,
    counter_difference,
    empirical_sensitivity,
    l1_distance,
    l2_distance,
    linf_distance,
    neighbouring_streams_by_deletion,
    sketch_distance,
)
from repro.exceptions import ParameterError
from repro.sketches import MisraGriesSketch


class TestDistances:
    def test_counter_difference_sparse(self):
        diff = counter_difference({"a": 3, "b": 1}, {"a": 1, "c": 2})
        assert diff == {"a": 2.0, "b": 1.0, "c": -2.0}

    def test_missing_keys_are_zero(self):
        assert counter_difference({"a": 1}, {}) == {"a": 1.0}

    def test_identical_gives_empty(self):
        assert counter_difference({"a": 1}, {"a": 1}) == {}

    def test_l1_l2_linf(self):
        first = {"a": 3.0, "b": 0.0}
        second = {"a": 0.0, "c": 4.0}
        assert l1_distance(first, second) == pytest.approx(7.0)
        assert l2_distance(first, second) == pytest.approx(5.0)
        assert linf_distance(first, second) == pytest.approx(4.0)

    def test_sketch_distance_dispatch(self):
        first, second = {"a": 1.0}, {"a": 4.0}
        assert sketch_distance(first, second, 1) == pytest.approx(3.0)
        assert sketch_distance(first, second, 2) == pytest.approx(3.0)
        assert sketch_distance(first, second, math.inf) == pytest.approx(3.0)
        with pytest.raises(ParameterError):
            sketch_distance(first, second, 3)

    def test_distance_of_empty_sketches(self):
        assert l1_distance({}, {}) == 0.0
        assert linf_distance({}, {}) == 0.0


class TestNeighbourEnumeration:
    def test_all_deletions_enumerated(self):
        pairs = list(neighbouring_streams_by_deletion((1, 2, 3)))
        assert len(pairs) == 3
        assert pairs[0].neighbour == (2, 3)
        assert pairs[2].neighbour == (1, 2)

    def test_removed_element_property(self):
        pairs = list(neighbouring_streams_by_deletion(("a", "b")))
        assert pairs[0].removed_element == "a"
        assert pairs[1].removed_element == "b"

    def test_sampling_limits_pairs(self):
        pairs = list(neighbouring_streams_by_deletion(range(100), max_pairs=7, rng=0))
        assert len(pairs) == 7

    def test_empty_stream_yields_nothing(self):
        assert list(neighbouring_streams_by_deletion(())) == []


class TestEmpiricalSensitivity:
    def test_exact_histogram_has_sensitivity_one(self):
        def exact(stream):
            counts = {}
            for element in stream:
                counts[element] = counts.get(element, 0) + 1.0
            return counts

        report = empirical_sensitivity(exact, [[1, 2, 1, 3, 1], [2, 2, 2]])
        assert report.max_l1 == pytest.approx(1.0)
        assert report.max_l2 == pytest.approx(1.0)
        assert report.max_differing_keys == 1

    def test_mg_sensitivity_at_most_k(self):
        k = 4

        def sketch_fn(stream):
            return MisraGriesSketch.from_stream(k, stream).counters()

        streams = [[i % 7 for i in range(60)], list(range(30))]
        report = empirical_sensitivity(sketch_fn, streams)
        assert report.max_l1 <= k
        assert report.pairs_checked == 90

    def test_report_as_dict(self):
        def constant(stream):
            return {"a": 1.0}

        report = empirical_sensitivity(constant, [[1, 2]])
        assert report.as_dict()["max_l1"] == 0.0


class TestAllStreams:
    def test_counts(self):
        streams = list(all_streams([0, 1], 3))
        assert len(streams) == 8
        assert (0, 0, 0) in streams and (1, 1, 1) in streams

    def test_zero_length(self):
        assert list(all_streams([0, 1], 0)) == [()]

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            list(all_streams([0], -1))
