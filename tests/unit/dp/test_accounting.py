"""Unit tests for privacy accounting (composition, group privacy, Lemma 20)."""

import math

import pytest

from repro.dp.accounting import (
    PrivacyParams,
    compose_adaptive,
    compose_basic,
    group_privacy,
    total_budget_for_merges,
    user_level_parameters,
    verify_group_privacy_roundtrip,
)
from repro.exceptions import PrivacyParameterError


class TestPrivacyParams:
    def test_pure_flag(self):
        assert PrivacyParams(1.0, 0.0).is_pure
        assert not PrivacyParams(1.0, 1e-6).is_pure

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyParams(0.0, 0.0)

    def test_invalid_delta(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyParams(1.0, 1.5)


class TestBasicComposition:
    def test_epsilons_and_deltas_add(self):
        total = compose_basic([PrivacyParams(0.5, 1e-7), PrivacyParams(0.25, 2e-7)])
        assert total.epsilon == pytest.approx(0.75)
        assert total.delta == pytest.approx(3e-7)

    def test_empty_rejected(self):
        with pytest.raises(PrivacyParameterError):
            compose_basic([])

    def test_delta_capped_below_one(self):
        total = compose_basic([PrivacyParams(1.0, 0.4)] * 5)
        assert total.delta < 1.0


class TestAdvancedComposition:
    def test_beats_basic_for_many_rounds(self):
        rounds = 100
        epsilon = 0.1
        advanced = compose_adaptive(epsilon, 0.0, rounds, delta_prime=1e-6)
        basic = rounds * epsilon
        assert advanced.epsilon < basic

    def test_delta_accumulates(self):
        result = compose_adaptive(0.1, 1e-8, 10, delta_prime=1e-6)
        assert result.delta == pytest.approx(10 * 1e-8 + 1e-6)


class TestGroupPrivacy:
    def test_lemma19_formula(self):
        base = PrivacyParams(0.2, 1e-8)
        grouped = group_privacy(base, 5)
        assert grouped.epsilon == pytest.approx(1.0)
        assert grouped.delta == pytest.approx(5 * math.exp(1.0) * 1e-8)

    def test_group_size_one_is_identity(self):
        base = PrivacyParams(0.7, 1e-7)
        grouped = group_privacy(base, 1)
        assert grouped.epsilon == pytest.approx(base.epsilon)
        assert grouped.delta == pytest.approx(math.exp(0.7) * 1e-7)

    def test_scaled_for_group_method(self):
        base = PrivacyParams(0.1, 1e-9)
        assert base.scaled_for_group(3).epsilon == pytest.approx(0.3)


class TestUserLevelParameters:
    def test_lemma20_formula(self):
        params = user_level_parameters(1.0, 1e-6, 4)
        assert params.epsilon == pytest.approx(0.25)
        assert params.delta == pytest.approx(1e-6 / (4 * math.exp(1.0)))

    def test_roundtrip_recovers_target(self):
        for m in (1, 2, 8, 32):
            assert verify_group_privacy_roundtrip(1.0, 1e-6, m)
            assert verify_group_privacy_roundtrip(0.3, 1e-8, m)

    def test_m_one_keeps_epsilon(self):
        params = user_level_parameters(2.0, 1e-5, 1)
        assert params.epsilon == pytest.approx(2.0)


class TestMergeBudget:
    def test_disjoint_streams_use_parallel_composition(self):
        per_sketch = PrivacyParams(1.0, 1e-6)
        assert total_budget_for_merges(per_sketch, 10).epsilon == pytest.approx(1.0)

    def test_overlapping_streams_compose(self):
        per_sketch = PrivacyParams(0.5, 1e-7)
        total = total_budget_for_merges(per_sketch, 4, streams_disjoint=False)
        assert total.epsilon == pytest.approx(2.0)
