"""Unit tests for privacy accounting (composition, group privacy, Lemma 20)."""

import math

import pytest

from repro.dp.accounting import (
    PrivacyParams,
    compose_adaptive,
    compose_basic,
    group_privacy,
    total_budget_for_merges,
    user_level_parameters,
    verify_group_privacy_roundtrip,
)
from repro.exceptions import PrivacyParameterError, VacuousGuaranteeError


class TestPrivacyParams:
    def test_pure_flag(self):
        assert PrivacyParams(1.0, 0.0).is_pure
        assert not PrivacyParams(1.0, 1e-6).is_pure

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyParams(0.0, 0.0)

    def test_invalid_delta(self):
        with pytest.raises(PrivacyParameterError):
            PrivacyParams(1.0, 1.5)


class TestBasicComposition:
    def test_epsilons_and_deltas_add(self):
        total = compose_basic([PrivacyParams(0.5, 1e-7), PrivacyParams(0.25, 2e-7)])
        assert total.epsilon == pytest.approx(0.75)
        assert total.delta == pytest.approx(3e-7)

    def test_empty_rejected(self):
        with pytest.raises(PrivacyParameterError):
            compose_basic([])

    def test_vacuous_delta_raises(self):
        # delta summing to >= 1 is a vacuous guarantee — an explicit error,
        # not a silent clamp just below 1.0 (the old behavior).
        with pytest.raises(VacuousGuaranteeError) as excinfo:
            compose_basic([PrivacyParams(1.0, 0.4)] * 5)
        assert excinfo.value.delta == pytest.approx(2.0)
        assert excinfo.value.epsilon == pytest.approx(5.0)
        assert isinstance(excinfo.value, PrivacyParameterError)

    def test_zero_delta_compose_stays_pure(self):
        total = compose_basic([PrivacyParams(0.5, 0.0)] * 4)
        assert total.epsilon == pytest.approx(2.0)
        assert total.delta == 0.0
        assert total.is_pure


class TestAdvancedComposition:
    def test_beats_basic_for_many_rounds(self):
        rounds = 100
        epsilon = 0.1
        advanced = compose_adaptive(epsilon, 0.0, rounds, delta_prime=1e-6)
        basic = rounds * epsilon
        assert advanced.epsilon < basic

    def test_delta_accumulates(self):
        result = compose_adaptive(0.1, 1e-8, 10, delta_prime=1e-6)
        assert result.delta == pytest.approx(10 * 1e-8 + 1e-6)

    def test_single_round_worse_than_basic(self):
        # For k=1 the advanced bound pays the sqrt(2 ln(1/d')) term plus
        # eps(e^eps - 1) for nothing — basic composition is strictly
        # tighter for a single round.  The accountant relies on this being
        # a real (not pathological) trade-off.
        epsilon, delta = 0.5, 1e-8
        advanced = compose_adaptive(epsilon, delta, 1, delta_prime=1e-6)
        basic = compose_basic([PrivacyParams(epsilon, delta)])
        assert advanced.epsilon > basic.epsilon
        assert advanced.delta > basic.delta

    def test_vacuous_delta_prime_raises(self):
        with pytest.raises(VacuousGuaranteeError):
            compose_adaptive(0.1, 0.3, 4, delta_prime=0.5)

    def test_huge_epsilon_overflow_raises_vacuous(self):
        # e^eps overflows float64 around eps ~ 710; the bound is then
        # meaningless, which must surface as vacuous, not OverflowError.
        with pytest.raises(VacuousGuaranteeError):
            compose_adaptive(1000.0, 1e-9, 2, delta_prime=1e-6)


class TestGroupPrivacy:
    def test_lemma19_formula(self):
        base = PrivacyParams(0.2, 1e-8)
        grouped = group_privacy(base, 5)
        assert grouped.epsilon == pytest.approx(1.0)
        assert grouped.delta == pytest.approx(5 * math.exp(1.0) * 1e-8)

    def test_group_size_one_is_identity(self):
        base = PrivacyParams(0.7, 1e-7)
        grouped = group_privacy(base, 1)
        assert grouped.epsilon == pytest.approx(base.epsilon)
        assert grouped.delta == pytest.approx(math.exp(0.7) * 1e-7)

    def test_scaled_for_group_method(self):
        base = PrivacyParams(0.1, 1e-9)
        assert base.scaled_for_group(3).epsilon == pytest.approx(0.3)

    def test_overflow_at_large_group_raises_vacuous(self):
        # m * e^(m*eps) * delta overflows (or exceeds 1) long before the
        # epsilon term does — Lemma 19 at large m must fail loudly.
        base = PrivacyParams(1.0, 1e-12)
        with pytest.raises(VacuousGuaranteeError):
            group_privacy(base, 1000)

    def test_pure_dp_group_is_exact_at_any_size(self):
        # delta=0 stays delta=0: no e^(m*eps) factor to overflow.
        grouped = group_privacy(PrivacyParams(2.0, 0.0), 1000)
        assert grouped.epsilon == pytest.approx(2000.0)
        assert grouped.delta == 0.0
        assert grouped.is_pure


class TestUserLevelParameters:
    def test_lemma20_formula(self):
        params = user_level_parameters(1.0, 1e-6, 4)
        assert params.epsilon == pytest.approx(0.25)
        assert params.delta == pytest.approx(1e-6 / (4 * math.exp(1.0)))

    def test_roundtrip_recovers_target(self):
        for m in (1, 2, 8, 32):
            assert verify_group_privacy_roundtrip(1.0, 1e-6, m)
            assert verify_group_privacy_roundtrip(0.3, 1e-8, m)

    def test_m_one_keeps_epsilon(self):
        params = user_level_parameters(2.0, 1e-5, 1)
        assert params.epsilon == pytest.approx(2.0)


class TestMergeBudget:
    def test_disjoint_streams_use_parallel_composition(self):
        per_sketch = PrivacyParams(1.0, 1e-6)
        assert total_budget_for_merges(per_sketch, 10).epsilon == pytest.approx(1.0)

    def test_overlapping_streams_compose(self):
        per_sketch = PrivacyParams(0.5, 1e-7)
        total = total_budget_for_merges(per_sketch, 4, streams_disjoint=False)
        assert total.epsilon == pytest.approx(2.0)
