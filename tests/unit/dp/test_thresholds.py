"""Unit tests for the threshold formulas."""

import math

import pytest

from repro.dp.thresholds import (
    gaussian_tail_bound,
    geometric_pmg_threshold,
    gshm_loose_parameters,
    gshm_threshold,
    pmg_threshold,
    pmg_threshold_standard_sketch,
    pure_dp_noise_scale,
    stability_histogram_threshold,
)
from repro.exceptions import CalibrationError, PrivacyParameterError


class TestPmgThreshold:
    def test_formula(self):
        assert pmg_threshold(1.0, 1e-6) == pytest.approx(1.0 + 2.0 * math.log(3e6))

    def test_decreasing_in_epsilon(self):
        assert pmg_threshold(2.0, 1e-6) < pmg_threshold(0.5, 1e-6)

    def test_increasing_as_delta_shrinks(self):
        assert pmg_threshold(1.0, 1e-9) > pmg_threshold(1.0, 1e-3)

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyParameterError):
            pmg_threshold(0.0, 1e-6)
        with pytest.raises(PrivacyParameterError):
            pmg_threshold(1.0, 0.0)


class TestStandardSketchThreshold:
    def test_larger_than_paper_variant(self):
        # The standard sketch needs to hide up to k differing keys; once
        # (k+1)/2 exceeds the paper's constant 3 (i.e. k > 5) its threshold is
        # strictly larger than the paper-variant threshold.
        for k in (8, 16, 256):
            assert pmg_threshold_standard_sketch(1.0, 1e-6, k) > pmg_threshold(1.0, 1e-6)

    def test_grows_with_k(self):
        assert (pmg_threshold_standard_sketch(1.0, 1e-6, 1024)
                > pmg_threshold_standard_sketch(1.0, 1e-6, 16))

    def test_formula(self):
        expected = 1.0 + 2.0 * math.log((64 + 1) / (2 * 1e-6)) / 0.5
        assert pmg_threshold_standard_sketch(0.5, 1e-6, 64) == pytest.approx(expected)


class TestGeometricThreshold:
    def test_at_least_laplace_threshold(self):
        # The ceiling makes the geometric threshold at least as large.
        assert geometric_pmg_threshold(1.0, 1e-6) >= pmg_threshold(1.0, 1e-6) - 2.0

    def test_is_odd_integer_offset(self):
        value = geometric_pmg_threshold(1.0, 1e-6)
        assert (value - 1.0) % 2.0 == pytest.approx(0.0)


class TestPureDpScale:
    def test_default_sensitivity_two(self):
        assert pure_dp_noise_scale(0.5) == pytest.approx(4.0)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(CalibrationError):
            pure_dp_noise_scale(1.0, sensitivity=0.0)


class TestStabilityThreshold:
    def test_formula(self):
        assert stability_histogram_threshold(1.0, 1e-6) == pytest.approx(1.0 + math.log(1e6))

    def test_scales_with_sensitivity(self):
        assert (stability_histogram_threshold(1.0, 1e-6, sensitivity=5.0)
                == pytest.approx(5.0 * stability_histogram_threshold(1.0, 1e-6, sensitivity=1.0)))


class TestGshmThresholds:
    def test_loose_parameters_positive(self):
        sigma, tau = gshm_loose_parameters(1.0, 1e-6, 64)
        assert sigma > 0 and tau > 0

    def test_sigma_scales_with_sqrt_l(self):
        sigma_small, _ = gshm_loose_parameters(1.0, 1e-6, 16)
        sigma_large, _ = gshm_loose_parameters(1.0, 1e-6, 64)
        assert sigma_large == pytest.approx(2.0 * sigma_small)

    def test_threshold_grows_with_l(self):
        sigma = 5.0
        assert gshm_threshold(sigma, 1e-6, 128) > gshm_threshold(sigma, 1e-6, 2)

    def test_threshold_requires_positive_sigma(self):
        with pytest.raises(CalibrationError):
            gshm_threshold(0.0, 1e-6, 4)


class TestGaussianTailBound:
    def test_monotone_in_count(self):
        assert gaussian_tail_bound(1.0, 100, 0.05) > gaussian_tail_bound(1.0, 10, 0.05)

    def test_zero_count(self):
        assert gaussian_tail_bound(1.0, 0, 0.05) == 0.0

    def test_roughly_max_of_samples(self):
        import numpy as np

        bound = gaussian_tail_bound(2.0, 50, 0.05)
        rng = np.random.default_rng(0)
        maxima = np.abs(rng.normal(0, 2.0, size=(2000, 50))).max(axis=1)
        assert np.mean(maxima > bound) <= 0.08
