"""Unit tests for the standard DP mechanisms."""

import numpy as np
import pytest

from repro.dp.mechanisms import (
    GaussianMechanism,
    GeometricMechanism,
    LaplaceMechanism,
    make_mechanism,
)
from repro.exceptions import PrivacyParameterError


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        assert LaplaceMechanism(epsilon=0.5, sensitivity=3.0).scale == pytest.approx(6.0)

    def test_noise_scale_reported(self):
        assert LaplaceMechanism(epsilon=2.0).noise_scale() == pytest.approx(0.5)

    def test_add_noise_array_preserves_shape(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        values = np.arange(12, dtype=float).reshape(3, 4)
        noisy = mechanism.add_noise_array(values, rng=0)
        assert noisy.shape == values.shape
        assert not np.allclose(noisy, values)

    def test_add_noise_dict_keys_preserved(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        noisy = mechanism.add_noise_dict({"a": 1.0, "b": 2.0}, rng=0)
        assert set(noisy) == {"a", "b"}

    def test_noise_unbiased(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        noisy = mechanism.add_noise_array(np.zeros(100_000), rng=1)
        assert abs(np.mean(noisy)) < 0.05

    def test_high_probability_bound(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        bound = mechanism.high_probability_bound(count=10, beta=0.05)
        noisy = np.abs(mechanism.add_noise_array(np.zeros((1000, 10)), rng=2))
        fraction_exceeding = np.mean(noisy.max(axis=1) > bound)
        assert fraction_exceeding <= 0.07

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyParameterError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(Exception):
            LaplaceMechanism(epsilon=1.0, sensitivity=0.0)


class TestGaussianMechanism:
    def test_sigma_formula(self):
        mechanism = GaussianMechanism(epsilon=0.5, delta=1e-6, l2_sensitivity=2.0)
        expected = np.sqrt(2 * np.log(1.25 / 1e-6)) * 2.0 / 0.5
        assert mechanism.sigma == pytest.approx(expected)

    def test_add_noise(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=1e-5)
        noisy = mechanism.add_noise_array(np.zeros(50_000), rng=0)
        assert abs(np.std(noisy) - mechanism.sigma) / mechanism.sigma < 0.02

    def test_sigma_decreases_with_epsilon(self):
        low = GaussianMechanism(epsilon=0.1, delta=1e-6).sigma
        high = GaussianMechanism(epsilon=0.9, delta=1e-6).sigma
        assert high < low


class TestGeometricMechanism:
    def test_scale(self):
        assert GeometricMechanism(epsilon=0.5, sensitivity=2.0).scale == pytest.approx(4.0)

    def test_output_is_integer_shifted(self):
        mechanism = GeometricMechanism(epsilon=1.0)
        values = np.array([3.0, 7.0, 11.0])
        noisy = mechanism.add_noise_array(values, rng=0)
        assert np.allclose(noisy, np.round(noisy))


class TestFactory:
    def test_make_laplace(self):
        assert isinstance(make_mechanism("laplace", 1.0), LaplaceMechanism)

    def test_make_geometric(self):
        assert isinstance(make_mechanism("geometric", 1.0), GeometricMechanism)

    def test_make_gaussian_requires_delta(self):
        assert isinstance(make_mechanism("gaussian", 1.0, delta=1e-6), GaussianMechanism)
        with pytest.raises(PrivacyParameterError):
            make_mechanism("gaussian", 1.0)

    def test_unknown_kind(self):
        with pytest.raises(PrivacyParameterError):
            make_mechanism("exponential", 1.0)
