"""Unit tests for the noise distributions (samplers and cdf/quantile functions)."""

import math

import numpy as np
import pytest

from repro.dp.distributions import (
    gaussian_cdf,
    gaussian_quantile,
    gaussian_survival,
    laplace_cdf,
    laplace_quantile,
    laplace_survival,
    sample_gaussian,
    sample_laplace,
    sample_two_sided_geometric,
    two_sided_geometric_survival,
)
from repro.exceptions import ParameterError


class TestLaplaceSampler:
    def test_scalar_and_vector_shapes(self):
        assert isinstance(sample_laplace(1.0, rng=0), float)
        assert sample_laplace(1.0, size=10, rng=0).shape == (10,)

    def test_reproducible(self):
        assert np.allclose(sample_laplace(2.0, size=5, rng=3), sample_laplace(2.0, size=5, rng=3))

    def test_mean_and_variance(self):
        samples = sample_laplace(1.5, size=200_000, rng=0)
        assert abs(np.mean(samples)) < 0.05
        # Variance of Laplace(b) is 2 b^2 = 4.5.
        assert abs(np.var(samples) - 4.5) < 0.2

    def test_rejects_bad_scale(self):
        with pytest.raises(ParameterError):
            sample_laplace(0.0)
        with pytest.raises(ParameterError):
            sample_laplace(-1.0)


class TestLaplaceCdf:
    def test_symmetry(self):
        assert laplace_cdf(0.0, 1.0) == pytest.approx(0.5)
        assert laplace_cdf(-2.0, 1.0) == pytest.approx(1.0 - laplace_cdf(2.0, 1.0))

    def test_survival_complements_cdf(self):
        for x in (-3.0, -0.5, 0.0, 0.5, 3.0):
            assert laplace_cdf(x, 2.0) + laplace_survival(x, 2.0) == pytest.approx(1.0)

    def test_known_value(self):
        # P[Laplace(1) >= ln(3/delta)] = delta/6 for delta small (used in Lemma 11).
        delta = 1e-6
        assert laplace_survival(math.log(3.0 / delta), 1.0) == pytest.approx(delta / 6.0)

    def test_quantile_inverts_cdf(self):
        for p in (0.01, 0.3, 0.5, 0.7, 0.99):
            assert laplace_cdf(laplace_quantile(p, 1.7), 1.7) == pytest.approx(p)

    def test_vectorized_cdf(self):
        values = laplace_cdf(np.array([-1.0, 0.0, 1.0]), 1.0)
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0)


class TestGaussian:
    def test_sampler_moments(self):
        samples = sample_gaussian(2.0, size=200_000, rng=1)
        assert abs(np.mean(samples)) < 0.05
        assert abs(np.std(samples) - 2.0) < 0.05

    def test_cdf_symmetry(self):
        assert gaussian_cdf(0.0, 1.0) == pytest.approx(0.5)
        assert gaussian_cdf(-1.3, 2.0) == pytest.approx(1.0 - gaussian_cdf(1.3, 2.0))

    def test_survival_complements(self):
        assert gaussian_cdf(0.7, 1.0) + gaussian_survival(0.7, 1.0) == pytest.approx(1.0)

    def test_quantile_matches_known_values(self):
        # Standard normal quantiles.
        assert gaussian_quantile(0.975, 1.0) == pytest.approx(1.959964, abs=1e-4)
        assert gaussian_quantile(0.5, 1.0) == pytest.approx(0.0, abs=1e-9)
        assert gaussian_quantile(0.0228, 1.0) == pytest.approx(-1.9991, abs=1e-2)

    def test_quantile_scales_with_sigma(self):
        assert gaussian_quantile(0.9, 3.0) == pytest.approx(3.0 * gaussian_quantile(0.9, 1.0))

    def test_quantile_inverts_cdf(self):
        for p in (0.001, 0.2, 0.5, 0.8, 0.999):
            assert gaussian_cdf(gaussian_quantile(p, 1.0), 1.0) == pytest.approx(p, abs=1e-7)


class TestTwoSidedGeometric:
    def test_integer_valued(self):
        samples = sample_two_sided_geometric(2.0, size=100, rng=0)
        assert samples.dtype == np.int64

    def test_scalar_return(self):
        assert isinstance(sample_two_sided_geometric(1.0, rng=0), int)

    def test_symmetry_and_spread(self):
        samples = sample_two_sided_geometric(1.0, size=200_000, rng=2)
        assert abs(np.mean(samples)) < 0.02
        # Variance of the two-sided geometric with alpha = e^{-1/b}:
        # 2 alpha / (1 - alpha)^2.
        alpha = math.exp(-1.0)
        expected_var = 2 * alpha / (1 - alpha) ** 2
        assert abs(np.var(samples) - expected_var) < 0.1

    def test_survival_function_matches_empirical(self):
        scale = 1.5
        samples = sample_two_sided_geometric(scale, size=100_000, rng=3)
        for threshold in (1, 2, 4):
            empirical = np.mean(samples >= threshold)
            assert two_sided_geometric_survival(threshold, scale) == pytest.approx(empirical, abs=0.01)

    def test_survival_symmetry(self):
        # P[X >= 0] = 1 - P[X >= 1] ... by symmetry P[X >= -k+1] = 1 - P[X >= k].
        scale = 2.0
        assert two_sided_geometric_survival(-1, scale) == pytest.approx(
            1.0 - two_sided_geometric_survival(2, scale))

    def test_rejects_negative_size(self):
        with pytest.raises(ParameterError):
            sample_two_sided_geometric(1.0, size=-1)
