"""Property: every compiled kernel is bit-identical to its python engine.

The compiled tier (:mod:`repro.kernels`) is only allowed to exist because it
changes *nothing*: same keys, same float bits, same dict iteration order as
the pure-python engines on every input.  Hypothesis drives all three kernels:

* ``mg_update`` — chunked ``update_batch`` streams through the compiled
  backend and through the shared njit-able source in
  :mod:`repro.kernels._engine` (the numba provider compiles exactly that
  text), against the vectorized python engine.
* ``fold_interned`` — ``merge_many`` / ``merge_many_arrays`` / ``merge_tree``
  under ``backend="compiled"`` against ``backend="python"``, including the
  NaN inputs that must route around the kernel.
* ``scan_binary_header`` — binary columnar frames decoded with and without
  the kernel, on canonical frames and on byte-corrupted ones, where *both*
  paths must agree on the result or raise the same error with the same
  message.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.api import framing, wire
from repro.kernels import _engine
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import merge_many, merge_many_arrays, merge_tree

COMPILED = kernels.available()

needs_compiled = pytest.mark.skipif(
    not COMPILED, reason="no compiled kernel provider in this environment")

# Small universes force collisions and decrement rounds; the extremes force
# the int64 edge handling (keys near +/- 2**63 stay exact in the kernels).
_ELEMENTS = st.one_of(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
)
_STREAMS = st.lists(_ELEMENTS, min_size=0, max_size=300)
_SIZES = st.integers(min_value=1, max_value=48)


def _chunked(stream, chunk_size):
    for start in range(0, len(stream), chunk_size):
        yield np.asarray(stream[start:start + chunk_size], dtype=np.int64)


def _identical_sketches(left: MisraGriesSketch, right: MisraGriesSketch):
    assert left.counters() == right.counters()
    assert list(left.counters()) == list(right.counters())
    assert left.stream_length == right.stream_length


# ---------------------------------------------------------------------------
# mg_update
# ---------------------------------------------------------------------------

@needs_compiled
@given(stream=_STREAMS, k=_SIZES, chunk_size=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_compiled_update_batch_is_bit_identical(stream, k, chunk_size):
    python = MisraGriesSketch(k, backend="python")
    compiled = MisraGriesSketch(k, backend="compiled")
    assert compiled.resolved_backend() != "python"
    for chunk in _chunked(stream, chunk_size):
        python.update_batch(chunk)
        compiled.update_batch(chunk)
    _identical_sketches(python, compiled)


@given(stream=_STREAMS, k=_SIZES, chunk_size=st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_engine_spec_update_is_bit_identical(stream, k, chunk_size):
    """The shared njit-able source (what numba compiles) matches python."""
    python = MisraGriesSketch(k, backend="python")
    engine = MisraGriesSketch(k, backend="python")
    for chunk in _chunked(stream, chunk_size):
        python.update_batch(chunk)
        state = engine._export_kernel_state()
        assert state is not None
        keys, dummy, stored, ins_seq, io = state
        assert _engine.mg_update(keys, dummy, stored, ins_seq, io, chunk) == 0
        engine._import_kernel_state(keys, dummy, stored, ins_seq, io,
                                    int(chunk.size))
    _identical_sketches(python, engine)


@needs_compiled
@given(stream=_STREAMS, k=_SIZES)
@settings(max_examples=20, deadline=None)
def test_compiled_sketch_interoperates_with_sequential_updates(stream, k):
    """Mixing per-element updates (python engine) into a compiled sketch
    keeps the state exact: the kernel rebuilds from whatever dict it finds."""
    python = MisraGriesSketch(k, backend="python")
    compiled = MisraGriesSketch(k, backend="compiled")
    for index, element in enumerate(stream):
        if index % 3 == 0:
            python.update(element)
            compiled.update(element)
        else:
            chunk = np.asarray([element], dtype=np.int64)
            python.update_batch(chunk)
            compiled.update_batch(chunk)
    _identical_sketches(python, compiled)


# ---------------------------------------------------------------------------
# fold_interned
# ---------------------------------------------------------------------------

_VALUES = st.one_of(
    st.floats(min_value=0.0, max_value=1e15, allow_nan=False),
    st.integers(min_value=0, max_value=10**12).map(float),
    st.just(0.0),
)
_SUMMARIES = st.lists(
    st.dictionaries(st.integers(min_value=-(2**40), max_value=2**40),
                    _VALUES, max_size=40),
    min_size=0, max_size=8)


@needs_compiled
@given(summaries=_SUMMARIES, k=_SIZES)
@settings(max_examples=60, deadline=None)
def test_compiled_merge_fold_is_bit_identical(summaries, k):
    python = merge_many(summaries, k, backend="python")
    compiled = merge_many(summaries, k, backend="compiled")
    assert python == compiled
    assert list(python) == list(compiled)
    assert all(type(value) is float for value in compiled.values())


@needs_compiled
@given(summaries=_SUMMARIES, k=_SIZES)
@settings(max_examples=30, deadline=None)
def test_compiled_columnar_and_tree_merges_are_bit_identical(summaries, k):
    keys_list = [np.fromiter(s.keys(), dtype=np.int64, count=len(s))
                 for s in summaries]
    values_list = [np.fromiter(s.values(), dtype=np.float64, count=len(s))
                   for s in summaries]
    python = merge_many_arrays(keys_list, values_list, k, backend="python")
    compiled = merge_many_arrays(keys_list, values_list, k, backend="compiled")
    assert python == compiled and list(python) == list(compiled)
    tree_python = merge_tree(summaries, k, backend="python")
    tree_compiled = merge_tree(summaries, k, backend="compiled")
    assert tree_python == tree_compiled
    assert list(tree_python) == list(tree_compiled)


@needs_compiled
@given(summaries=_SUMMARIES, k=_SIZES, position=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_nan_values_route_around_the_kernel_identically(summaries, k,
                                                        position):
    summaries = [dict(s) for s in summaries if s]
    if not summaries:
        summaries = [{0: 1.0}]
    target = summaries[position % len(summaries)]
    target[sorted(target)[position % len(target)]] = float("nan")
    python = merge_many(summaries, k, backend="python")
    compiled = merge_many(summaries, k, backend="compiled")
    assert list(python) == list(compiled)
    for left, right in zip(python.values(), compiled.values()):
        assert (left != left and right != right) or left == right


# ---------------------------------------------------------------------------
# scan_binary_header
# ---------------------------------------------------------------------------

def _decode_both_ways(body):
    """Decode once with the kernel eligible and once forced pure-python.

    Uses a manual :class:`pytest.MonkeyPatch` (not the fixture) so Hypothesis
    can rerun the test body freely without the function-scoped-fixture
    health check firing.
    """
    outcomes = []
    for backend in (None, "python"):
        patch = pytest.MonkeyPatch()
        try:
            if backend:
                patch.setenv(kernels.ENV_VAR, backend)
            else:
                patch.delenv(kernels.ENV_VAR, raising=False)
            try:
                payload = framing.decode_payload_body(bytes(body))
                outcomes.append(("ok", payload))
            except framing.FramingError as error:
                outcomes.append(("error", str(error)))
        finally:
            patch.undo()
    return outcomes


def _assert_same_outcome(with_kernel, without_kernel):
    assert with_kernel[0] == without_kernel[0]
    if with_kernel[0] == "error":
        assert with_kernel[1] == without_kernel[1]
        return
    left, right = with_kernel[1], without_kernel[1]
    assert left.kind == right.kind and left.k == right.k
    assert left.meta == right.meta
    assert np.array_equal(left.key_array, right.key_array)
    assert np.array_equal(left.values, right.values)


_COUNTERS = st.dictionaries(st.integers(min_value=-(2**62), max_value=2**62),
                            st.integers(0, 10**9).map(float), max_size=20)


@needs_compiled
@given(counters=_COUNTERS,
       k=st.none() | st.integers(1, 4096),
       stream_length=st.none() | st.integers(0, 10**12))
@settings(max_examples=60, deadline=None)
def test_scanner_decodes_canonical_frames_identically(counters, k,
                                                      stream_length):
    payload = wire.encode_counters(counters, k=k, stream_length=stream_length)
    body = framing._binary_frame_body(payload)
    with_kernel, without_kernel = _decode_both_ways(body)
    assert with_kernel[0] == "ok", with_kernel
    _assert_same_outcome(with_kernel, without_kernel)


@needs_compiled
@given(counters=_COUNTERS, position=st.integers(0, 10**6),
       replacement=st.integers(0, 255))
@settings(max_examples=80, deadline=None)
def test_scanner_agrees_with_python_on_corrupted_frames(counters, position,
                                                        replacement):
    body = bytearray(framing._binary_frame_body(
        wire.encode_counters(counters, k=32)))
    body[position % len(body)] = replacement
    _assert_same_outcome(*_decode_both_ways(body))


@needs_compiled
@given(counters=_COUNTERS, cut=st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_scanner_agrees_with_python_on_truncated_frames(counters, cut):
    body = framing._binary_frame_body(wire.encode_counters(counters))
    truncated = body[:cut % (len(body) + 1)]
    _assert_same_outcome(*_decode_both_ways(truncated))
