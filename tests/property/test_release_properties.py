"""Property-based tests for the release mechanisms' structural guarantees.

These do not try to verify differential privacy statistically (that is the
audit's job); they verify release invariants that must hold for *every* input
and random seed: released keys come from the sketch, thresholds are enforced,
dummy keys never leak, and outputs respect the declared universe.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import BohlerKerschbaumMG, ChanPrivateMisraGries, StabilityHistogram
from repro.core import GaussianSparseHistogram, PrivateMisraGries
from repro.core.pure_dp import ApproximateDPReducedRelease
from repro.sketches import MisraGriesSketch
from repro.sketches.misra_gries import DummyKey

streams = st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=150)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=16)
epsilons = st.floats(min_value=0.1, max_value=5.0)


@given(stream=streams, k=ks, epsilon=epsilons, seed=seeds)
@settings(max_examples=150, deadline=None)
def test_pmg_release_invariants(stream, k, epsilon, seed):
    sketch = MisraGriesSketch.from_stream(k, stream)
    mechanism = PrivateMisraGries(epsilon=epsilon, delta=1e-6)
    histogram = mechanism.release(sketch, rng=seed)
    threshold = mechanism.threshold(k)
    stream_elements = set(stream)
    for key, value in histogram.items():
        assert not isinstance(key, DummyKey)
        assert key in stream_elements
        assert value >= threshold
    assert len(histogram) <= k
    assert histogram.metadata.epsilon == epsilon


@given(stream=streams, k=ks, epsilon=epsilons, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_approx_dp_reduced_release_invariants(stream, k, epsilon, seed):
    mechanism = ApproximateDPReducedRelease(epsilon=epsilon, delta=1e-6)
    histogram = mechanism.run(stream, k=k, rng=seed)
    stream_elements = set(stream)
    for key, value in histogram.items():
        assert key in stream_elements
        assert value >= mechanism.threshold


@given(stream=streams, k=ks, epsilon=epsilons, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_chan_thresholded_release_invariants(stream, k, epsilon, seed):
    mechanism = ChanPrivateMisraGries(epsilon=epsilon, k=k, delta=1e-6)
    histogram = mechanism.run(stream, rng=seed)
    stream_elements = set(stream)
    for key, value in histogram.items():
        assert key in stream_elements
        assert value >= mechanism.threshold


@given(stream=streams, k=ks, epsilon=epsilons, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_bk_release_invariants(stream, k, epsilon, seed):
    mechanism = BohlerKerschbaumMG(epsilon=epsilon, delta=1e-6, k=k, as_published=True)
    histogram = mechanism.run(stream, rng=seed)
    for key, value in histogram.items():
        assert key in set(stream)
        assert value >= mechanism.threshold


@given(counters=st.dictionaries(st.integers(min_value=0, max_value=30),
                                st.floats(min_value=0.0, max_value=1e4),
                                max_size=20),
       epsilon=st.floats(min_value=0.1, max_value=0.99),
       l=st.integers(min_value=1, max_value=32),
       seed=seeds)
@settings(max_examples=100, deadline=None)
def test_gshm_release_invariants(counters, epsilon, l, seed):
    mechanism = GaussianSparseHistogram(epsilon=epsilon, delta=1e-6, l=l, calibration="loose")
    histogram = mechanism.release(counters, rng=seed)
    _, tau = mechanism.parameters()
    for key, value in histogram.items():
        assert counters.get(key, 0.0) != 0.0
        assert value >= 1.0 + tau


@given(counts=st.dictionaries(st.integers(min_value=0, max_value=50),
                              st.integers(min_value=0, max_value=10_000),
                              max_size=30),
       epsilon=epsilons, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_stability_histogram_invariants(counts, epsilon, seed):
    mechanism = StabilityHistogram(epsilon=epsilon, delta=1e-6)
    histogram = mechanism.release({key: float(value) for key, value in counts.items()}, rng=seed)
    for key, value in histogram.items():
        assert counts.get(key, 0) > 0
        assert value >= mechanism.threshold


@given(stream=streams, k=ks, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_pmg_geometric_noise_integrality(stream, k, seed):
    """With geometric noise all released counts are integers (plus the integer
    counter), which is the point of the Section 5.2 variant."""
    sketch = MisraGriesSketch.from_stream(k, stream)
    mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6, noise="geometric")
    histogram = mechanism.release(sketch, rng=seed)
    for value in histogram.counts.values():
        assert value == pytest.approx(round(value))
