"""Property-based tests for the noise distributions and thresholds."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.distributions import (
    gaussian_cdf,
    gaussian_quantile,
    laplace_cdf,
    laplace_quantile,
    laplace_survival,
    two_sided_geometric_survival,
)
from repro.dp.thresholds import (
    pmg_threshold,
    pmg_threshold_standard_sketch,
    stability_histogram_threshold,
)
from repro.dp.accounting import group_privacy, user_level_parameters, PrivacyParams
from repro.exceptions import VacuousGuaranteeError

scales = st.floats(min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False)
reals = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
probabilities = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)
epsilons = st.floats(min_value=0.01, max_value=10.0)
deltas = st.floats(min_value=1e-12, max_value=0.1)


@given(x=reals, scale=scales)
@settings(max_examples=300, deadline=None)
def test_laplace_cdf_in_unit_interval_and_symmetric(x, scale):
    value = laplace_cdf(x, scale)
    assert 0.0 <= value <= 1.0
    assert laplace_cdf(-x, scale) == pytest.approx(1.0 - value, abs=1e-12)


@given(x=reals, scale=scales)
@settings(max_examples=300, deadline=None)
def test_laplace_survival_complements_cdf(x, scale):
    assert laplace_cdf(x, scale) + laplace_survival(x, scale) == pytest.approx(1.0)


@given(p=probabilities, scale=scales)
@settings(max_examples=300, deadline=None)
def test_laplace_quantile_inverts_cdf(p, scale):
    assert laplace_cdf(laplace_quantile(p, scale), scale) == pytest.approx(p, abs=1e-9)


@given(x=st.floats(min_value=-8.0, max_value=8.0), sigma=scales)
@settings(max_examples=300, deadline=None)
def test_gaussian_cdf_monotone_and_symmetric(x, sigma):
    value = gaussian_cdf(x, sigma)
    assert 0.0 <= value <= 1.0
    assert gaussian_cdf(-x, sigma) == pytest.approx(1.0 - value, abs=1e-12)
    assert gaussian_cdf(x + 0.1, sigma) >= value


@given(p=st.floats(min_value=1e-5, max_value=1.0 - 1e-5), sigma=scales)
@settings(max_examples=300, deadline=None)
def test_gaussian_quantile_inverts_cdf(p, sigma):
    assert gaussian_cdf(gaussian_quantile(p, sigma), sigma) == pytest.approx(p, abs=1e-6)


@given(x=st.integers(min_value=-30, max_value=30), scale=scales)
@settings(max_examples=300, deadline=None)
def test_two_sided_geometric_survival_monotone(x, scale):
    assert (two_sided_geometric_survival(x, scale)
            >= two_sided_geometric_survival(x + 1, scale) - 1e-12)
    assert 0.0 <= two_sided_geometric_survival(x, scale) <= 1.0


@given(epsilon=epsilons, delta=deltas)
@settings(max_examples=300, deadline=None)
def test_thresholds_positive_and_monotone_in_epsilon(epsilon, delta):
    assert pmg_threshold(epsilon, delta) > 1.0
    assert pmg_threshold(epsilon, delta) >= pmg_threshold(epsilon * 2, delta) - 1e-9
    assert stability_histogram_threshold(epsilon, delta) > 0.0


@given(epsilon=epsilons, delta=deltas, k=st.integers(min_value=1, max_value=4096))
@settings(max_examples=300, deadline=None)
def test_standard_sketch_threshold_monotone_in_k(epsilon, delta, k):
    assert (pmg_threshold_standard_sketch(epsilon, delta, k + 1)
            >= pmg_threshold_standard_sketch(epsilon, delta, k))


@given(epsilon=epsilons, delta=deltas, m=st.integers(min_value=1, max_value=64))
@settings(max_examples=300, deadline=None)
def test_lemma20_roundtrip_never_exceeds_target(epsilon, delta, m):
    """Group privacy applied to the Lemma 20 parameters stays within the target."""
    element_level = user_level_parameters(epsilon, delta, m)
    recovered = group_privacy(element_level, m)
    assert recovered.epsilon <= epsilon * (1.0 + 1e-9)
    assert recovered.delta <= delta * (1.0 + 1e-6)


@given(epsilon=epsilons, delta=st.floats(min_value=1e-12, max_value=0.99), m=st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_group_privacy_monotone_in_group_size(epsilon, delta, m):
    """Both Lemma 19 parameters grow with the group size.  Group deltas at
    or past 1.0 now surface as VacuousGuaranteeError instead of a silent
    clamp, so vacuity itself must be monotone: once a group size is
    vacuous, every larger one is too."""
    base = PrivacyParams(epsilon, min(delta, 0.5))
    try:
        smaller = group_privacy(base, m)
    except VacuousGuaranteeError:
        with pytest.raises(VacuousGuaranteeError):
            group_privacy(base, m + 1)
        return
    try:
        larger = group_privacy(base, m + 1)
    except VacuousGuaranteeError:
        return  # delta crossed the 1.0 line going up: monotone by definition
    assert larger.epsilon >= smaller.epsilon
    assert larger.delta >= smaller.delta - 1e-15
