"""Property-based tests for the sensitivity results (Lemmas 15, 16, 17, 26, 27)."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PrivacyAwareMisraGries, reduce_sensitivity
from repro.dp.sensitivity import l1_distance
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import merge_many
from repro.streams.user_streams import flatten_user_stream, user_stream_total_length

streams = st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=80)
small_k = st.integers(min_value=1, max_value=6)

# User-level streams: each user contributes a set of 1-3 distinct small ints.
user_sets = st.sets(st.integers(min_value=0, max_value=9), min_size=1, max_size=3)
user_streams = st.lists(user_sets.map(frozenset), min_size=1, max_size=40)


# ---------------------------------------------------------------------------
# Algorithm 3 (Lemmas 15 and 16)
# ---------------------------------------------------------------------------

@given(stream=streams, k=small_k)
@settings(max_examples=200, deadline=None)
def test_lemma15_reduced_sketch_error_bound(stream, k):
    """Post-processed estimates stay within [f - n/(k+1), f]."""
    reduced = reduce_sensitivity(MisraGriesSketch.from_stream(k, stream))
    truth = Counter(stream)
    bound = len(stream) / (k + 1)
    for element in set(stream) | set(reduced):
        estimate = reduced.get(element, 0.0)
        exact = truth.get(element, 0)
        assert exact - bound - 1e-9 <= estimate <= exact + 1e-9


@given(stream=streams, k=small_k, position=st.integers(min_value=0, max_value=79))
@settings(max_examples=300, deadline=None)
def test_lemma16_reduced_sensitivity_below_two(stream, k, position):
    """The l1 distance of the post-processed sketches of neighbouring streams is < 2."""
    index = position % len(stream)
    neighbour = stream[:index] + stream[index + 1:]
    reduced = reduce_sensitivity(MisraGriesSketch.from_stream(k, stream))
    reduced_neighbour = reduce_sensitivity(MisraGriesSketch.from_stream(k, neighbour))
    assert l1_distance(reduced, reduced_neighbour) < 2.0 + 1e-9


# ---------------------------------------------------------------------------
# Merging (Lemma 17 / Corollary 18)
# ---------------------------------------------------------------------------

@given(stream=st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=80),
       k=small_k,
       num_parts=st.integers(min_value=2, max_value=4),
       position=st.integers(min_value=0, max_value=79))
@settings(max_examples=200, deadline=None)
def test_corollary18_merged_counters_differ_by_at_most_one(stream, k, num_parts, position):
    """Merged sketches for neighbouring inputs differ by at most 1 per counter,
    with all differences sharing the same sign."""
    index = position % len(stream)
    # Split into contiguous parts, then delete one element from its part.
    part_length = max(len(stream) // num_parts, 1)
    parts = [stream[i:i + part_length] for i in range(0, len(stream), part_length)]
    affected = min(index // part_length, len(parts) - 1)
    offset = index - affected * part_length
    neighbour_parts = [list(part) for part in parts]
    if offset < len(neighbour_parts[affected]):
        del neighbour_parts[affected][offset]
    sketches = [MisraGriesSketch.from_stream(k, part).counters() for part in parts]
    sketches_neighbour = [MisraGriesSketch.from_stream(k, part).counters()
                          for part in neighbour_parts]
    merged = merge_many(sketches, k)
    merged_neighbour = merge_many(sketches_neighbour, k)
    keys = set(merged) | set(merged_neighbour)
    diffs = [merged.get(key, 0.0) - merged_neighbour.get(key, 0.0) for key in keys]
    assert all(abs(diff) <= 1.0 + 1e-9 for diff in diffs)
    positive = any(diff > 1e-9 for diff in diffs)
    negative = any(diff < -1e-9 for diff in diffs)
    assert not (positive and negative)


@given(stream=streams, k=small_k, num_parts=st.integers(min_value=2, max_value=4))
@settings(max_examples=150, deadline=None)
def test_lemma29_merged_error_bound(stream, k, num_parts):
    """Merged sketches keep the N/(k+1) error bound for any split."""
    part_length = max(len(stream) // num_parts, 1)
    parts = [stream[i:i + part_length] for i in range(0, len(stream), part_length)]
    sketches = [MisraGriesSketch.from_stream(k, part).counters() for part in parts]
    merged = merge_many(sketches, k)
    truth = Counter(stream)
    bound = len(stream) / (k + 1)
    for element in set(stream) | set(merged):
        estimate = merged.get(element, 0.0)
        exact = truth.get(element, 0)
        assert exact - bound - 1e-9 <= estimate <= exact + 1e-9


# ---------------------------------------------------------------------------
# PAMG (Lemmas 26 and 27)
# ---------------------------------------------------------------------------

@given(stream=user_streams, k=st.integers(min_value=3, max_value=8))
@settings(max_examples=200, deadline=None)
def test_lemma26_pamg_error_bound(stream, k):
    """PAMG estimates lie in [f - floor(N/(k+1)), f]."""
    sketch = PrivacyAwareMisraGries.from_stream(k, stream)
    truth = Counter()
    for user in stream:
        truth.update(user)
    total = user_stream_total_length(stream)
    bound = total // (k + 1)
    for element in set(truth) | set(sketch.counters()):
        estimate = sketch.estimate(element)
        exact = truth.get(element, 0)
        assert exact - bound - 1e-9 <= estimate <= exact + 1e-9


@given(stream=user_streams, k=st.integers(min_value=3, max_value=8),
       position=st.integers(min_value=0, max_value=39))
@settings(max_examples=300, deadline=None)
def test_lemma27_pamg_neighbouring_structure(stream, k, position):
    """Neighbouring PAMG sketches: one key set contains the other and every
    counter differs by at most 1, all in the same direction."""
    index = position % len(stream)
    neighbour = stream[:index] + stream[index + 1:]
    counters = PrivacyAwareMisraGries.from_stream(k, stream).counters()
    counters_neighbour = PrivacyAwareMisraGries.from_stream(k, neighbour).counters()
    keys = set(counters) | set(counters_neighbour)
    diffs = {key: counters.get(key, 0.0) - counters_neighbour.get(key, 0.0) for key in keys}
    assert all(abs(diff) <= 1.0 + 1e-9 for diff in diffs.values())
    positive = any(diff > 1e-9 for diff in diffs.values())
    negative = any(diff < -1e-9 for diff in diffs.values())
    assert not (positive and negative)
    # Key-set containment (condition (1) or (2) of Lemma 27).
    assert set(counters_neighbour) <= set(counters) or set(counters) <= set(counters_neighbour)


@given(stream=user_streams, k=st.integers(min_value=3, max_value=8))
@settings(max_examples=150, deadline=None)
def test_pamg_matches_flattened_truth_direction(stream, k):
    """PAMG never overestimates the number of users containing an element."""
    sketch = PrivacyAwareMisraGries.from_stream(k, stream)
    truth = Counter()
    for user in stream:
        truth.update(user)
    for element, estimate in sketch.counters().items():
        assert estimate <= truth.get(element, 0) + 1e-9
