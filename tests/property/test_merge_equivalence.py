"""Bit-identity of the vectorized aggregation tier vs the frozen seed fold.

The vectorized key-interning merge (:func:`repro.sketches.merge.merge_many`),
its columnar wire-path twin (:func:`~repro.sketches.merge.merge_many_arrays`)
and the single-pass :func:`~repro.sketches.merge.sum_counters` must produce
*exactly* the results of the seed dict-based implementations preserved in
:mod:`repro.sketches._reference_merge` — same keys in the same dict
iteration order, exactly equal float values (the per-key float operations
are performed in the same order, so no tolerance is needed anywhere in this
file).  Iteration order matters downstream: the DP releases pair sequential
noise draws with dict order.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SketchStateError
from repro.sketches.merge import merge_many, merge_many_arrays, merge_tree, sum_counters
from repro.sketches._reference_merge import (
    reference_merge_many,
    reference_sum_counters,
)

# Small universes make key collisions across sketches frequent; negative ints
# exercise the dense-offset interning, large ints the np.unique path.
small_ints = st.integers(min_value=-12, max_value=12)
wide_ints = st.integers(min_value=-(10 ** 14), max_value=10 ** 14)
strings = st.text(alphabet="abcdef", min_size=0, max_size=4)
mixed_keys = st.one_of(small_ints, strings, st.booleans(),
                       st.tuples(st.integers(0, 3), st.integers(0, 3)))

# Values include exact zeros (dropped by the merge), integers and awkward
# fractions; non-negative, as the merge requires.
values = st.one_of(
    st.just(0.0),
    st.integers(min_value=0, max_value=30).map(float),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
)

sketch_sizes = st.integers(min_value=1, max_value=8)


def _collections(keys):
    # max_size above k so single- and multi-sketch inputs are over-sized often.
    sketch = st.dictionaries(keys, values, min_size=0, max_size=24)
    return st.lists(sketch, min_size=0, max_size=6)


@given(sketches=_collections(small_ints), k=sketch_sizes)
@settings(max_examples=300, deadline=None)
def test_merge_many_matches_seed_fold_small_ints(sketches, k):
    got = merge_many([dict(s) for s in sketches], k)
    expected = reference_merge_many([dict(s) for s in sketches], k)
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(wide_ints), k=sketch_sizes)
@settings(max_examples=150, deadline=None)
def test_merge_many_matches_seed_fold_wide_ints(sketches, k):
    got = merge_many([dict(s) for s in sketches], k)
    expected = reference_merge_many([dict(s) for s in sketches], k)
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(strings), k=sketch_sizes)
@settings(max_examples=150, deadline=None)
def test_merge_many_matches_seed_fold_strings(sketches, k):
    got = merge_many([dict(s) for s in sketches], k)
    expected = reference_merge_many([dict(s) for s in sketches], k)
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(mixed_keys), k=sketch_sizes)
@settings(max_examples=300, deadline=None)
def test_merge_many_matches_seed_fold_mixed_keys(sketches, k):
    got = merge_many([dict(s) for s in sketches], k)
    expected = reference_merge_many([dict(s) for s in sketches], k)
    assert list(got.items()) == list(expected.items())


@given(counters=st.dictionaries(small_ints, values, min_size=0, max_size=30),
       k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_single_oversized_input_matches_seed(counters, k):
    got = merge_many([dict(counters)], k)
    expected = reference_merge_many([dict(counters)], k)
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(small_ints), k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_merge_many_arrays_matches_seed_fold(sketches, k):
    keys_list = [np.fromiter(s.keys(), dtype=np.int64, count=len(s)) for s in sketches]
    values_list = [np.fromiter(s.values(), dtype=np.float64, count=len(s))
                   for s in sketches]
    got = merge_many_arrays(keys_list, values_list, k)
    expected = reference_merge_many([dict(s) for s in sketches], k)
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(mixed_keys))
@settings(max_examples=300, deadline=None)
def test_sum_counters_matches_seed(sketches):
    got = sum_counters([dict(s) for s in sketches])
    expected = reference_sum_counters([dict(s) for s in sketches])
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(wide_ints))
@settings(max_examples=150, deadline=None)
def test_sum_counters_matches_seed_wide_ints(sketches):
    got = sum_counters([dict(s) for s in sketches])
    expected = reference_sum_counters([dict(s) for s in sketches])
    assert list(got.items()) == list(expected.items())


@given(sketches=_collections(small_ints), k=sketch_sizes)
@settings(max_examples=150, deadline=None)
def test_merge_tree_keeps_size_bound_and_key_subset(sketches, k):
    """The tree merge returns at most k counters drawn from the input keys."""
    merged = merge_tree([dict(s) for s in sketches], k)
    if len(sketches) != 1:
        assert len(merged) <= k
    all_keys = {key for sketch in sketches for key in sketch}
    assert set(merged) <= all_keys
    assert all(value > 0 for value in merged.values()) or len(sketches) == 1


@given(sketches=_collections(small_ints), k=sketch_sizes)
@settings(max_examples=100, deadline=None)
def test_negative_counters_raise_like_seed(sketches, k):
    """Planting a negative counter raises in both implementations alike."""
    sketches = [dict(s) for s in sketches]
    if len(sketches) < 2:
        sketches = sketches + [{0: 1.0}, {1: 2.0}]
    sketches[-1] = dict(sketches[-1])
    sketches[-1][99] = -1.0
    with pytest.raises(SketchStateError):
        reference_merge_many([dict(s) for s in sketches], k)
    with pytest.raises(SketchStateError):
        merge_many([dict(s) for s in sketches], k)
