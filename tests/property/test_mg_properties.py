"""Property-based tests for the Misra-Gries sketches (Fact 7, Lemma 8)."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import MisraGriesSketch, SpaceSavingSketch, StandardMisraGriesSketch
from repro.sketches.misra_gries import DummyKey

# Small universes make collisions (and therefore interesting branch
# interactions) frequent.
streams = st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=120)
sketch_sizes = st.integers(min_value=1, max_value=8)


@given(stream=streams, k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_fact7_error_bound_paper_variant(stream, k):
    """Every estimate lies in [f(x) - n/(k+1), f(x)]."""
    sketch = MisraGriesSketch.from_stream(k, stream)
    truth = Counter(stream)
    bound = len(stream) / (k + 1)
    for element in set(stream) | set(sketch.counters()):
        estimate = sketch.estimate(element)
        exact = truth.get(element, 0)
        assert exact - bound - 1e-9 <= estimate <= exact + 1e-9


@given(stream=streams, k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_fact7_error_bound_standard_variant(stream, k):
    sketch = StandardMisraGriesSketch.from_stream(k, stream)
    truth = Counter(stream)
    bound = len(stream) / (k + 1)
    for element in set(stream) | set(sketch.counters()):
        estimate = sketch.estimate(element)
        exact = truth.get(element, 0)
        assert exact - bound - 1e-9 <= estimate <= exact + 1e-9


@given(stream=streams, k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_paper_variant_estimates_equal_standard_variant(stream, k):
    """The paper's modification changes the stored key set, not the estimates."""
    paper = MisraGriesSketch.from_stream(k, stream)
    standard = StandardMisraGriesSketch.from_stream(k, stream)
    for element in set(stream):
        assert paper.estimate(element) == standard.estimate(element)


@given(stream=streams, k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_paper_variant_invariants(stream, k):
    """Structural invariants: exactly k keys, non-negative counters, no dummies
    with positive counts, stream length tracked."""
    sketch = MisraGriesSketch.from_stream(k, stream)
    raw = sketch.raw_counters()
    assert len(raw) == k
    assert all(value >= 0 for value in raw.values())
    assert all(value == 0 for key, value in raw.items() if isinstance(key, DummyKey))
    assert sketch.stream_length == len(stream)


@given(stream=streams, k=sketch_sizes)
@settings(max_examples=200, deadline=None)
def test_standard_variant_stores_at_most_k_positive_counters(stream, k):
    sketch = StandardMisraGriesSketch.from_stream(k, stream)
    assert len(sketch.counters()) <= k
    assert all(value > 0 for value in sketch.counters().values())


@given(stream=streams, k=sketch_sizes)
@settings(max_examples=150, deadline=None)
def test_space_saving_bounds(stream, k):
    """SpaceSaving overestimates by at most n/k and its counters sum to n."""
    sketch = SpaceSavingSketch.from_stream(k, stream)
    truth = Counter(stream)
    bound = len(stream) / k
    assert sum(sketch.counters().values()) == pytest.approx(len(stream))
    for element, estimate in sketch.counters().items():
        exact = truth.get(element, 0)
        assert exact <= estimate <= exact + bound + 1e-9


def _lemma8_cases_hold(sketch, neighbour_sketch):
    """Check the conclusion of Lemma 8 for sketches of S and S' (S' = S minus one element)."""
    keys = sketch.stored_keys()
    keys_neighbour = neighbour_sketch.stored_keys()
    counters = sketch.raw_counters()
    counters_neighbour = neighbour_sketch.raw_counters()
    # At most two keys differ, and their counters are at most 1.
    if len(keys & keys_neighbour) < len(keys) - 2:
        return False
    for key in keys - keys_neighbour:
        if counters[key] > 1:
            return False
    for key in keys_neighbour - keys:
        if counters_neighbour[key] > 1:
            return False
    union = keys | keys_neighbour
    diffs = {key: counters.get(key, 0.0) - counters_neighbour.get(key, 0.0) for key in union}
    # Case (1): all counters in T' are one lower in the sketch for S, and keys
    # outside T' have counter 0 in the sketch for S.
    case_decrement = all(
        counters.get(key, 0.0) == counters_neighbour.get(key, 0.0) - 1 for key in keys_neighbour
    ) and all(counters.get(key, 0.0) == 0.0 for key in keys - keys_neighbour)
    # Case (2): exactly one counter is one higher, everything else equal.
    non_zero = {key: diff for key, diff in diffs.items() if diff != 0.0}
    case_single = (len(non_zero) == 0) or (
        len(non_zero) == 1 and list(non_zero.values())[0] == 1.0)
    return case_decrement or case_single


@given(stream=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=60),
       k=st.integers(min_value=1, max_value=5),
       position=st.integers(min_value=0, max_value=59))
@settings(max_examples=300, deadline=None)
def test_lemma8_structure_of_neighbouring_sketches(stream, k, position):
    """For any stream and any deleted position, the two MG sketches are in one
    of the two cases of Lemma 8."""
    index = position % len(stream)
    neighbour = stream[:index] + stream[index + 1:]
    sketch = MisraGriesSketch.from_stream(k, stream)
    neighbour_sketch = MisraGriesSketch.from_stream(k, neighbour)
    assert _lemma8_cases_hold(sketch, neighbour_sketch)


@given(stream=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=60),
       k=st.integers(min_value=1, max_value=5),
       position=st.integers(min_value=0, max_value=59))
@settings(max_examples=300, deadline=None)
def test_lemma8_l1_distance_at_most_k(stream, k, position):
    """The l1 distance between neighbouring MG sketches is at most k (Chan et al.)."""
    index = position % len(stream)
    neighbour = stream[:index] + stream[index + 1:]
    counters = MisraGriesSketch.from_stream(k, stream).counters()
    counters_neighbour = MisraGriesSketch.from_stream(k, neighbour).counters()
    union = set(counters) | set(counters_neighbour)
    l1 = sum(abs(counters.get(key, 0.0) - counters_neighbour.get(key, 0.0)) for key in union)
    assert l1 <= k + 1e-9
