"""Property: framed encode → decode → merge is bit-identical to the buffered path.

The streaming aggregator folds frames one at a time
(:class:`repro.api.framing.StreamingMerger`); the buffered aggregator decodes
every envelope (``load_payload``-style) and hands all arrays to
:func:`repro.sketches.merge.merge_many_arrays` at once.  Both must produce
*exactly* the same merged summary — same key set, same insertion order, bit
equal float values — because both equal the seed pairwise left fold.

Corrupted streams (truncated mid-frame, truncated length prefix, trailing
garbage) must fail with :class:`~repro.exceptions.FramingError`, never with a
bare ``struct``/``json``/``KeyError`` from the internals.
"""

from __future__ import annotations

import io

import numpy as np
from hypothesis import given, settings, strategies as st

import pytest

from repro.api.framing import FrameReader, FrameWriter, StreamingMerger
from repro.api.wire import decode, encode_counters
from repro.exceptions import FramingError
from repro.sketches.merge import merge_many, merge_many_arrays

# Counter dicts as the wire ships them: int64 keys, non-negative float values
# with integral and fractional cases (merged sketches carry fractions).
_KEYS = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_VALUES = st.one_of(
    st.integers(min_value=0, max_value=10 ** 9).map(float),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False))
_COUNTERS = st.dictionaries(_KEYS, _VALUES, min_size=0, max_size=24)
_SKETCH_LISTS = st.lists(_COUNTERS, min_size=1, max_size=8)


def _frame_bytes(counters_list, k):
    buffer = io.BytesIO()
    with FrameWriter(buffer, k=k, frames=len(counters_list)) as writer:
        for index, counters in enumerate(counters_list):
            writer.write_counters(counters, k=k, stream_length=100 * index)
    return buffer.getvalue()


@given(counters_list=_SKETCH_LISTS, k=st.integers(min_value=1, max_value=32))
@settings(max_examples=120, deadline=None)
def test_streamed_fold_bit_identical_to_buffered_arrays(counters_list, k):
    data = _frame_bytes(counters_list, k)

    # Buffered path: decode every envelope, one merge_many_arrays call.
    payloads = [decode(encode_counters(counters, k=k, stream_length=100 * index))
                for index, counters in enumerate(counters_list)]
    buffered = merge_many_arrays([payload.key_array for payload in payloads],
                                 [payload.values for payload in payloads], k)

    # Streamed path: fold one frame at a time off the framed bytes.
    merger = StreamingMerger(k).consume(FrameReader(io.BytesIO(data)))

    streamed = merger.merged()
    assert list(streamed.keys()) == list(buffered.keys())
    assert all(streamed[key] == buffered[key] for key in buffered)  # bit equal
    assert merger.frames == len(counters_list)
    assert merger.total_stream_length == sum(100 * index
                                             for index in range(len(counters_list)))


@given(counters_list=st.lists(
    st.dictionaries(st.text(min_size=1, max_size=6), _VALUES, max_size=12),
    min_size=1, max_size=5), k=st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_token_keyed_frames_match_dict_merge(counters_list, k):
    data = _frame_bytes(counters_list, k)
    merger = StreamingMerger(k).consume(FrameReader(io.BytesIO(data)))
    assert merger.merged() == merge_many(counters_list, k)


@given(counters_list=_SKETCH_LISTS, k=st.integers(min_value=1, max_value=16),
       cut=st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_truncated_stream_raises_framing_error(counters_list, k, cut):
    data = _frame_bytes(counters_list, k)
    cut = min(cut, len(data) - 1)
    truncated = data[:len(data) - cut]
    with pytest.raises(FramingError):
        StreamingMerger(k).consume(FrameReader(io.BytesIO(truncated)))


@given(counters_list=_SKETCH_LISTS, k=st.integers(min_value=1, max_value=16),
       garbage=st.binary(min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_trailing_garbage_raises_framing_error(counters_list, k, garbage):
    data = _frame_bytes(counters_list, k) + garbage
    with pytest.raises(FramingError):
        StreamingMerger(k).consume(FrameReader(io.BytesIO(data)))


@given(counters_list=st.lists(
    st.dictionaries(st.integers(min_value=-300, max_value=300), _VALUES,
                    min_size=0, max_size=24), min_size=1, max_size=8),
    k=st.integers(min_value=1, max_value=32))
@settings(max_examples=120, deadline=None)
def test_dense_fold_bit_identical_on_bounded_universes(counters_list, k):
    """Bounded key ranges stay on the dense incremental fold — same bits."""
    data = _frame_bytes(counters_list, k)
    merger = StreamingMerger(k).consume(FrameReader(io.BytesIO(data)))
    payloads = [decode(encode_counters(counters, k=k))
                for counters in counters_list]
    buffered = merge_many_arrays([payload.key_array for payload in payloads],
                                 [payload.values for payload in payloads], k)
    streamed = merger.merged()
    assert list(streamed.keys()) == list(buffered.keys())
    assert all(streamed[key] == buffered[key] for key in buffered)


@given(counters=_COUNTERS, k=st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_single_frame_equals_single_buffered_input(counters, k):
    """The first-fold step must mirror the left fold's oversized-input reduction."""
    data = _frame_bytes([counters], k)
    merger = StreamingMerger(k).consume(FrameReader(io.BytesIO(data)))
    payload = decode(encode_counters(counters, k=k))
    expected = merge_many_arrays([payload.key_array], [payload.values], k)
    assert merger.merged() == expected
