"""Property: observability is pure read-side — it never changes a release.

The standing design constraint for ``repro.obs`` (DESIGN.md
"Observability"): metrics and trace spans only *read* clocks and counters
around the existing fold/commit/release calls, so a server constructed with
``metrics=True`` and a JSON trace log attached must release **bit
identically** — keys, values, dict order, metadata — to a server with
``metrics=False`` over the same exports, the same client split and the same
seed.  Hypothesis drives export contents, k and seed; both servers run the
same concurrent push schedule in-process.
"""

from __future__ import annotations

import asyncio
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.wire import encode_counters
from repro.net import AggregatorClient, AggregatorServer

pytestmark = pytest.mark.net(seconds=240)

_KEYS = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_VALUES = st.one_of(
    st.integers(min_value=0, max_value=10 ** 6).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False))
_COUNTERS = st.dictionaries(_KEYS, _VALUES, min_size=0, max_size=12)
_EXPORT_LISTS = st.lists(_COUNTERS, min_size=1, max_size=8)


def _chunks(items, n):
    size, extra = divmod(len(items), n)
    chunks, start = [], 0
    for index in range(n):
        stop = start + size + (1 if index < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


async def _release(chunked_exports, k, seed, *, metrics, log_json=None):
    """N concurrent pushing clients + one release, with obs on or off."""
    async with await AggregatorServer(
            epsilon=1.0, delta=1e-6, k=k, metrics=metrics,
            log_json=log_json).start("127.0.0.1:0") as server:

        async def push_chunk(ordinal, chunk):
            if not chunk:
                return
            async with AggregatorClient(server.address, k=k, ordinal=ordinal,
                                        metrics=metrics) as client:
                await client.push(chunk)

        await asyncio.gather(*[push_chunk(ordinal, chunk)
                               for ordinal, chunk in enumerate(chunked_exports)])
        async with AggregatorClient(server.address) as client:
            release = await client.request_release(seed=seed)
        stats = server.stats()
        return release, stats


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_instrumented_release_bit_identical(counters_list, k, seed):
    exports = [encode_counters(counters, k=k, stream_length=37 * index)
               for index, counters in enumerate(counters_list)]
    chunked = _chunks(exports, 2)
    trace_log = io.StringIO()
    plain, plain_stats = asyncio.run(
        _release(chunked, k, seed, metrics=False))
    instrumented, obs_stats = asyncio.run(
        _release(chunked, k, seed, metrics=True, log_json=trace_log))
    # Bit identity: keys, values, dict order, metadata.
    assert list(instrumented.as_dict().items()) == list(plain.as_dict().items())
    assert instrumented.metadata.as_dict() == plain.metadata.as_dict()
    assert instrumented.metadata.stream_length == plain.metadata.stream_length
    assert instrumented.metadata.notes == plain.metadata.notes
    # The obs-off server carries no metrics stanza; the obs-on one does,
    # and actually recorded the work it watched.
    assert plain_stats["metrics"] is None
    counters = obs_stats["metrics"]["counters"]
    assert counters["server.frames_total"] == len(exports)
    assert counters["server.releases_total"] == 1
    # Spans reached the JSON log (at least the release span).
    assert '"span": "release"' in trace_log.getvalue()
    # Everything the two servers agree on outside obs is identical too.
    for key in ("frames", "stream_length", "sessions_committed", "releases"):
        assert obs_stats[key] == plain_stats[key]


@given(counters_list=st.lists(
    st.dictionaries(st.text(min_size=1, max_size=4), _VALUES, max_size=8),
    min_size=1, max_size=6), k=st.integers(min_value=1, max_value=8))
@settings(max_examples=8, deadline=None)
def test_instrumented_release_identical_for_token_keys(counters_list, k):
    """String-keyed exports (dict-mode fold) — still obs-invariant."""
    exports = [encode_counters(counters, k=k) for counters in counters_list]
    chunked = _chunks(exports, 2)
    plain, _ = asyncio.run(_release(chunked, k, seed=9, metrics=False))
    instrumented, _ = asyncio.run(_release(chunked, k, seed=9, metrics=True))
    assert list(instrumented.as_dict().items()) == list(plain.as_dict().items())
    assert instrumented.metadata.as_dict() == plain.metadata.as_dict()
