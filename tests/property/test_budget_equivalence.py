"""Property: the budget accountant is a gate, never a mechanism.

An under-budget RELEASE on a budgeted (or auth-guarded, or quota-limited)
server must be **bit-identical** — keys, values, dict order and metadata —
to the release an unaccounted server produces over the same exports with the
same seed.  The accountant charges before the histogram is computed but
never touches the release RNG; if it ever did (say, by drawing from a shared
generator to decide a tie-break), this suite would catch it.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.wire import encode_counters
from repro.dp.accounting import PrivacyParams
from repro.net import AggregatorClient, AggregatorServer

pytestmark = pytest.mark.net(seconds=240)

EPSILON, DELTA = 1.0, 1e-6
TOKEN = "property-token"

_KEYS = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_VALUES = st.one_of(
    st.integers(min_value=0, max_value=10 ** 6).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False))
_COUNTERS = st.dictionaries(_KEYS, _VALUES, min_size=0, max_size=10)
_EXPORT_LISTS = st.lists(_COUNTERS, min_size=1, max_size=6)


async def _serve_and_release(exports, k, seed, releases=1, token=None,
                             **server_kwargs):
    """Push ``exports`` as one session each, then request ``releases``
    releases; returns the list of released histograms."""
    server = AggregatorServer(epsilon=EPSILON, delta=DELTA, k=k,
                              **server_kwargs)
    async with await server.start("127.0.0.1:0"):
        for ordinal, envelope in enumerate(exports):
            async with AggregatorClient(server.address, k=k, ordinal=ordinal,
                                        auth_token=token) as client:
                await client.push([envelope])
        histograms = []
        async with AggregatorClient(server.address, auth_token=token) as client:
            for _ in range(releases):
                histograms.append(await client.request_release(seed=seed))
        return histograms


def _identical(left, right):
    assert list(left.as_dict().items()) == list(right.as_dict().items())
    assert left.metadata.as_dict() == right.metadata.as_dict()


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_budgeted_release_bit_identical_to_unaccounted(counters_list, k, seed):
    exports = [encode_counters(counters, k=k, stream_length=23 * index)
               for index, counters in enumerate(counters_list)]
    plain = asyncio.run(_serve_and_release(exports, k, seed))[0]
    budgeted = asyncio.run(_serve_and_release(
        exports, k, seed,
        budget=PrivacyParams(epsilon=10 * EPSILON, delta=1.0 - 1e-9)))[0]
    _identical(budgeted, plain)


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=10, deadline=None)
def test_hardened_release_bit_identical_to_open(counters_list, k, seed):
    """Auth + quotas + an advanced-composition budget all on at once still
    release the exact bits the open server does."""
    exports = [encode_counters(counters, k=k, stream_length=23 * index)
               for index, counters in enumerate(counters_list)]
    plain = asyncio.run(_serve_and_release(exports, k, seed))[0]
    hardened = asyncio.run(_serve_and_release(
        exports, k, seed, token=TOKEN, auth_token=TOKEN,
        budget=PrivacyParams(epsilon=100 * EPSILON, delta=1e-2),
        composition="advanced",
        max_session_frames=10, max_session_bytes=1 << 20,
        max_session_sketches=10))[0]
    _identical(hardened, plain)


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=8, deadline=None)
def test_every_admitted_release_matches_not_just_the_first(counters_list, k,
                                                           seed):
    """Charging release n must not perturb release n+1: the whole admitted
    sequence matches the unaccounted server's, and the release after the
    budget line is refused without changing anything already served."""
    exports = [encode_counters(counters, k=k, stream_length=23 * index)
               for index, counters in enumerate(counters_list)]
    plain = asyncio.run(_serve_and_release(exports, k, seed, releases=3))
    budgeted = asyncio.run(_serve_and_release(
        exports, k, seed, releases=3,
        budget=PrivacyParams(epsilon=3 * EPSILON, delta=1.0 - 1e-9)))
    for left, right in zip(budgeted, plain):
        _identical(left, right)
