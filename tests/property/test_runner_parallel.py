"""Parallel ExperimentRunner(workers=4) is bit-identical to sequential.

Per-repetition generators are spawned from the root generator in combination
order *before* dispatching to worker processes, so parameters, metrics and
repetition counts must agree exactly with a sequential run for the same seed
(only the wall-clock ``seconds`` field may differ).  The trial functions are
module-level so the process pool can pickle them.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import ExperimentRunner, SweepSpec


def _noise_trial(rng, k, scale):
    """A trial whose metrics depend on every bit of the repetition rng."""
    draws = rng.normal(scale=scale, size=4)
    return {
        "mean": float(draws.mean()) * k,
        "spread_max": float(draws.max() - draws.min()),
    }


def _aggregates(results):
    return [(result.parameters, result.metrics, result.repetitions)
            for result in results]


@given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
       repetitions=st.integers(min_value=1, max_value=3),
       ks=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=3,
                   unique=True),
       scales=st.lists(st.sampled_from([0.5, 1.0, 2.0]), min_size=1, max_size=2,
                       unique=True))
@settings(max_examples=15, deadline=None)
def test_parallel_runner_bit_identical_to_sequential(seed, repetitions, ks, scales):
    sweep = SweepSpec({"k": ks, "scale": scales})
    sequential = ExperimentRunner(repetitions=repetitions, rng=seed).run(
        _noise_trial, sweep)
    parallel = ExperimentRunner(repetitions=repetitions, rng=seed, workers=4).run(
        _noise_trial, sweep)
    assert _aggregates(sequential) == _aggregates(parallel)


def test_run_single_matches_run_for_first_combination():
    """run_single spawns the same generators a run() would for combo #1."""
    sweep = SweepSpec({"k": [3], "scale": [1.0]})
    via_run = ExperimentRunner(repetitions=4, rng=42).run(_noise_trial, sweep)
    via_single = ExperimentRunner(repetitions=4, rng=42).run_single(
        _noise_trial, {"k": 3, "scale": 1.0})
    assert via_run[0].metrics == via_single.metrics
