"""Property: sharded ``Pipeline.fit(stream, workers=N)`` keeps the MG guarantee.

Sharding an integer stream over ``N`` processes (one Misra-Gries sketch per
shard, ``merge_tree`` fan-in) yields a *different* summary than the
sequential fit — but Lemma 29 (Agarwal et al. mergeability) promises the same
error guarantee: for every element, the summary's estimate is at most the
true count and undercounts by at most ``n / (k + 1)``, exactly as the
sequential sketch does.  This is checked for N in {1, 2, 4} on identical
streams; N = 1 additionally stays bit-identical to the plain sequential fit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

import pytest

from repro.api import Pipeline
from repro.exceptions import ParameterError
from repro.sketches import ExactCounter

_STREAMS = st.lists(st.integers(min_value=0, max_value=60),
                    min_size=1, max_size=400)


def _check_mg_guarantee(counters, stream, k):
    truth = ExactCounter.from_stream(stream).counters()
    bound = len(stream) / (k + 1)
    for key, estimate in counters.items():
        true_count = truth.get(key, 0.0)
        assert estimate <= true_count + 1e-9
        assert estimate >= true_count - bound - 1e-9
    # Every element missing from the summary has an implicit estimate of 0,
    # which must also satisfy the undercount bound.
    for key, true_count in truth.items():
        if key not in counters:
            assert true_count <= bound + 1e-9


@given(stream=_STREAMS, k=st.integers(min_value=1, max_value=32))
@settings(max_examples=12, deadline=None)
def test_sharded_fit_satisfies_mg_error_guarantee(stream, k):
    batch = np.asarray(stream, dtype=np.int64)
    for workers in (1, 2, 4):
        pipe = Pipeline(sketch="misra_gries", mechanism="pmg", k=k,
                        epsilon=1.0, delta=1e-6)
        pipe.fit(batch, workers=workers)
        assert pipe.stream_length == len(stream)
        _check_mg_guarantee(pipe.counters(), stream, k)


@given(stream=_STREAMS, k=st.integers(min_value=1, max_value=32))
@settings(max_examples=12, deadline=None)
def test_workers_1_is_bit_identical_to_sequential_fit(stream, k):
    batch = np.asarray(stream, dtype=np.int64)
    sequential = Pipeline(sketch="misra_gries", mechanism="pmg", k=k,
                          epsilon=1.0, delta=1e-6).fit(batch)
    explicit = Pipeline(sketch="misra_gries", mechanism="pmg", k=k,
                        epsilon=1.0, delta=1e-6).fit(batch, workers=1)
    assert explicit.counters() == sequential.counters()


@given(stream=_STREAMS, k=st.integers(min_value=1, max_value=16))
@settings(max_examples=8, deadline=None)
def test_sharded_sketch_list_fit_satisfies_guarantee(stream, k):
    batch = np.asarray(stream, dtype=np.int64)
    pipe = Pipeline(mechanism="merged", k=k, epsilon=1.0, delta=1e-6)
    pipe.fit(batch, workers=2)
    assert len(pipe._sketches) == 1  # one tree-merged summary per fit call
    _check_mg_guarantee(pipe._sketches[0], stream.copy(), k)


def test_sharded_fit_rejects_non_integer_streams():
    pipe = Pipeline(sketch="misra_gries", mechanism="pmg", k=8,
                    epsilon=1.0, delta=1e-6)
    with pytest.raises(ParameterError, match="integer ndarray"):
        pipe.fit(["a", "b"], workers=2)


def test_sharded_fit_rejects_stream_consuming_mechanisms():
    pipe = Pipeline(mechanism="exact", epsilon=1.0, delta=1e-6, k=8)
    with pytest.raises(ParameterError, match="raw stream"):
        pipe.fit(np.arange(10), workers=2)


def test_sharded_fit_rejects_unmergeable_sketch_specs():
    pipe = Pipeline(sketch="count_min", mechanism="pmg", k=8,
                    epsilon=1.0, delta=1e-6)
    with pytest.raises(ParameterError, match="merge_tree"):
        pipe.fit(np.arange(10), workers=2)


def test_sharded_fit_accumulates_with_existing_state():
    stream = np.arange(200, dtype=np.int64) % 20
    pipe = Pipeline(sketch="misra_gries", mechanism="pmg", k=16,
                    epsilon=1.0, delta=1e-6)
    pipe.fit(stream[:100], workers=2)
    pipe.fit(stream[100:], workers=2)
    assert pipe.stream_length == 200
    _check_mg_guarantee(pipe.counters(), stream.tolist(), 16)


def test_any_workers_value_rejected_by_stream_consumers():
    """Even workers=1 is rejected: stream consumers never accept the knob."""
    pipe = Pipeline(mechanism="local_dp", epsilon=1.0, universe_size=64)
    with pytest.raises(ParameterError, match="raw stream"):
        pipe.fit(np.arange(10), workers=1)


def test_sharded_sketch_list_fit_rejects_untrusted_strategy():
    """merge() rejects collapsing untrusted sketch lists; sharded fit must too."""
    pipe = Pipeline(mechanism={"name": "merged", "strategy": "untrusted"},
                    k=8, epsilon=1.0, delta=1e-6)
    with pytest.raises(ParameterError, match="untrusted"):
        pipe.fit(np.arange(100, dtype=np.int64), workers=2)


def test_sketch_list_fit_takes_k_from_mechanism_spec():
    """k in the mechanism spec dict must size the per-stream sketches."""
    pipe = Pipeline(mechanism={"name": "merged", "k": 8},
                    epsilon=1.0, delta=1e-6)
    pipe.fit(np.arange(100, dtype=np.int64))
    assert pipe._sketches[0].size == 8
    sharded = Pipeline(mechanism={"name": "merged", "k": 8},
                       epsilon=1.0, delta=1e-6)
    sharded.fit(np.arange(100, dtype=np.int64), workers=2)
    assert len(sharded._sketches[0]) <= 8
