"""Property tests: serialized keys round-trip for int, str and bytes keys.

Covers the v1 token codec (`_encode_key`/`_decode_key`) and the v2 columnar
envelope, including adversarial strings that contain the ``:`` separator or
start with the literal ``__dummy__:`` / ``i:`` / ``s:`` / ``b:`` prefixes.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import wire
from repro.sketches.misra_gries import DummyKey
from repro.sketches.serialization import _decode_key, _encode_key

#: Strings biased towards the codec's own separators and prefixes.
_tricky_strings = st.one_of(
    st.text(max_size=30),
    st.text(max_size=10).map(lambda s: f"__dummy__:{s}"),
    st.text(max_size=10).map(lambda s: f"i:{s}"),
    st.text(max_size=10).map(lambda s: f"s:{s}"),
    st.text(max_size=10).map(lambda s: f"b:{s}"),
    st.text(max_size=10).map(lambda s: f":{s}:"),
)

_keys = st.one_of(
    st.integers(),
    _tricky_strings,
    st.binary(max_size=30),
)


@given(key=_keys)
def test_token_roundtrip(key):
    assert _decode_key(_encode_key(key)) == key


@given(key=_keys)
def test_token_roundtrip_preserves_type(key):
    decoded = _decode_key(_encode_key(key))
    assert type(decoded) is type(key)


@given(index=st.integers(min_value=0, max_value=10_000))
def test_dummy_key_roundtrip(index):
    assert _decode_key(_encode_key(DummyKey(index))) == DummyKey(index)


@given(counters=st.dictionaries(_keys, st.floats(min_value=0.0, max_value=1e12,
                                                 allow_nan=False), max_size=20),
       stream_length=st.integers(min_value=0, max_value=10 ** 9))
@settings(max_examples=60)
def test_v2_counters_envelope_roundtrip(counters, stream_length):
    """The columnar envelope round-trips keys, values and metadata bit-exactly."""
    payload = json.loads(json.dumps(
        wire.encode_counters(counters, k=16, stream_length=stream_length)))
    decoded = wire.decode(payload)
    assert decoded.counters() == counters
    assert decoded.stream_length == stream_length
    assert decoded.k == 16


@given(counters=st.dictionaries(st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1),
                                st.floats(min_value=0.0, max_value=1e12,
                                          allow_nan=False), max_size=20))
@settings(max_examples=60)
def test_v2_integer_envelope_takes_columnar_path(counters):
    payload = json.loads(json.dumps(wire.encode_counters(counters)))
    assert payload["key_encoding"] == "int"
    decoded = wire.decode(payload)
    assert decoded.key_array is not None
    assert decoded.counters() == counters
