"""Property: the networked release is bit-identical to the offline framed fold.

The aggregation service folds each client session through its own
:class:`~repro.api.framing.StreamingMerger` and combines the summaries in
ordinal order; ``repro merge --framed`` over one framed file per client does
exactly the same (per-file fold, argument-order combine).  For the same
exports, the same split into N clients and the same seeded rng, the released
histograms must match bit for bit — keys, values and dict order — for N in
{1, 2, 4}, regardless of how the concurrent pushes interleave on the wire.

The offline comparator here is the library path the CLI calls
(per-file ``StreamingMerger`` + :func:`~repro.api.framing.combine_mergers`
+ :meth:`~repro.api.framing.StreamingMerger.release`); the CLI-binary
equivalence on top of it is covered by
``tests/integration/test_net_aggregation.py``.
"""

from __future__ import annotations

import asyncio
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.framing import (
    FrameReader,
    FrameWriter,
    StreamingMerger,
    combine_mergers,
)
from repro.api.wire import encode_counters
from repro.core.merging import MergeStrategy, PrivateMergedRelease
from repro.net import AggregatorClient, AggregatorServer

pytestmark = pytest.mark.net(seconds=240)

_KEYS = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_VALUES = st.one_of(
    st.integers(min_value=0, max_value=10 ** 6).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False))
_COUNTERS = st.dictionaries(_KEYS, _VALUES, min_size=0, max_size=12)
_EXPORT_LISTS = st.lists(_COUNTERS, min_size=1, max_size=8)


def _chunks(items, n):
    """Split ``items`` into n contiguous chunks (some possibly empty)."""
    size, extra = divmod(len(items), n)
    chunks, start = [], 0
    for index in range(n):
        stop = start + size + (1 if index < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def _offline_release(chunked_exports, k, seed):
    """The `repro merge --framed` fold: per-file merger, ordered combine."""
    parts = []
    for chunk in chunked_exports:
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(chunk)) as writer:
            for envelope in chunk:
                writer.write_payload(envelope)
        parts.append(StreamingMerger(k).consume(FrameReader(io.BytesIO(buffer.getvalue()))))
    merger = combine_mergers(parts, k)
    mechanism = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k,
                                     strategy=MergeStrategy.TRUSTED_MERGED)
    return merger.release(mechanism, rng=seed)


async def _network_release(chunked_exports, k, seed):
    """N concurrent pushing clients + one release client, in-process server."""
    async with await AggregatorServer(epsilon=1.0, delta=1e-6,
                                      k=k).start("127.0.0.1:0") as server:

        async def push_chunk(ordinal, chunk):
            if not chunk:
                return
            async with AggregatorClient(server.address, k=k,
                                        ordinal=ordinal) as client:
                await client.push(chunk)

        await asyncio.gather(*[push_chunk(ordinal, chunk)
                               for ordinal, chunk in enumerate(chunked_exports)])
        async with AggregatorClient(server.address) as client:
            return await client.request_release(seed=seed)


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=20, deadline=None)
def test_network_release_bit_identical_for_n_clients(counters_list, k, seed):
    exports = [encode_counters(counters, k=k, stream_length=37 * index)
               for index, counters in enumerate(counters_list)]
    for clients in (1, 2, 4):
        chunked = _chunks(exports, clients)
        offline = _offline_release(chunked, k, seed)
        networked = asyncio.run(_network_release(chunked, k, seed))
        assert list(networked.as_dict().items()) == list(offline.as_dict().items())
        assert networked.metadata.stream_length == offline.metadata.stream_length
        assert networked.metadata.notes == offline.metadata.notes


@given(counters_list=st.lists(
    st.dictionaries(st.text(min_size=1, max_size=4), _VALUES, max_size=8),
    min_size=1, max_size=6), k=st.integers(min_value=1, max_value=8))
@settings(max_examples=10, deadline=None)
def test_network_release_matches_offline_for_token_keys(counters_list, k):
    """String-keyed exports drop both folds to dict mode — still identical."""
    exports = [encode_counters(counters, k=k) for counters in counters_list]
    chunked = _chunks(exports, 2)
    offline = _offline_release(chunked, k, seed=9)
    networked = asyncio.run(_network_release(chunked, k, seed=9))
    assert list(networked.as_dict().items()) == list(offline.as_dict().items())
