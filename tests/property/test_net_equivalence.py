"""Property: the networked release is bit-identical to the offline framed fold.

The aggregation service folds each client session through its own
:class:`~repro.api.framing.StreamingMerger` and combines the summaries in
ordinal order; ``repro merge --framed`` over one framed file per client does
exactly the same (per-file fold, argument-order combine).  For the same
exports, the same split into N clients and the same seeded rng, the released
histograms must match bit for bit — keys, values and dict order — for N in
{1, 2, 4}, regardless of how the concurrent pushes interleave on the wire.

The offline comparator here is the library path the CLI calls
(per-file ``StreamingMerger`` + :func:`~repro.api.framing.combine_mergers`
+ :meth:`~repro.api.framing.StreamingMerger.release`); the CLI-binary
equivalence on top of it is covered by
``tests/integration/test_net_aggregation.py``.
"""

from __future__ import annotations

import asyncio
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.framing import (
    FrameReader,
    FrameWriter,
    StreamingMerger,
    combine_mergers,
    summary_payload,
)
from repro.api.wire import encode_counters
from repro.core.merging import MergeStrategy, PrivateMergedRelease
from repro.net import AggregatorClient, AggregatorServer, RelayAggregatorServer

pytestmark = pytest.mark.net(seconds=240)

_KEYS = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_VALUES = st.one_of(
    st.integers(min_value=0, max_value=10 ** 6).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False))
_COUNTERS = st.dictionaries(_KEYS, _VALUES, min_size=0, max_size=12)
_EXPORT_LISTS = st.lists(_COUNTERS, min_size=1, max_size=8)


def _chunks(items, n):
    """Split ``items`` into n contiguous chunks (some possibly empty)."""
    size, extra = divmod(len(items), n)
    chunks, start = [], 0
    for index in range(n):
        stop = start + size + (1 if index < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def _offline_release(chunked_exports, k, seed):
    """The `repro merge --framed` fold: per-file merger, ordered combine."""
    parts = []
    for chunk in chunked_exports:
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(chunk)) as writer:
            for envelope in chunk:
                writer.write_payload(envelope)
        parts.append(StreamingMerger(k).consume(FrameReader(io.BytesIO(buffer.getvalue()))))
    merger = combine_mergers(parts, k)
    mechanism = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k,
                                     strategy=MergeStrategy.TRUSTED_MERGED)
    return merger.release(mechanism, rng=seed)


async def _network_release(chunked_exports, k, seed):
    """N concurrent pushing clients + one release client, in-process server."""
    async with await AggregatorServer(epsilon=1.0, delta=1e-6,
                                      k=k).start("127.0.0.1:0") as server:

        async def push_chunk(ordinal, chunk):
            if not chunk:
                return
            async with AggregatorClient(server.address, k=k,
                                        ordinal=ordinal) as client:
                await client.push(chunk)

        await asyncio.gather(*[push_chunk(ordinal, chunk)
                               for ordinal, chunk in enumerate(chunked_exports)])
        async with AggregatorClient(server.address) as client:
            return await client.request_release(seed=seed)


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=20, deadline=None)
def test_network_release_bit_identical_for_n_clients(counters_list, k, seed):
    exports = [encode_counters(counters, k=k, stream_length=37 * index)
               for index, counters in enumerate(counters_list)]
    for clients in (1, 2, 4):
        chunked = _chunks(exports, clients)
        offline = _offline_release(chunked, k, seed)
        networked = asyncio.run(_network_release(chunked, k, seed))
        assert list(networked.as_dict().items()) == list(offline.as_dict().items())
        assert networked.metadata.stream_length == offline.metadata.stream_length
        assert networked.metadata.notes == offline.metadata.notes


@given(counters_list=st.lists(
    st.dictionaries(st.text(min_size=1, max_size=4), _VALUES, max_size=8),
    min_size=1, max_size=6), k=st.integers(min_value=1, max_value=8))
@settings(max_examples=10, deadline=None)
def test_network_release_matches_offline_for_token_keys(counters_list, k):
    """String-keyed exports drop both folds to dict mode — still identical."""
    exports = [encode_counters(counters, k=k) for counters in counters_list]
    chunked = _chunks(exports, 2)
    offline = _offline_release(chunked, k, seed=9)
    networked = asyncio.run(_network_release(chunked, k, seed=9))
    assert list(networked.as_dict().items()) == list(offline.as_dict().items())


# ---------------------------------------------------------------------------
# Relay tier: N leaves x M clients releases bit-identically to one flat server
# ---------------------------------------------------------------------------

async def _relay_tree_release(chunked_exports, k, seed, leaves):
    """``leaves`` relay leaves, each serving a contiguous share of the client
    chunks with leaf-major ordinals, releasing through the last leaf."""
    per_leaf, extra = divmod(len(chunked_exports), leaves)
    assert extra == 0
    async with await AggregatorServer(
            epsilon=1.0, delta=1e-6, k=k,
            accept_relays=True).start("127.0.0.1:0") as root:
        relays = []
        try:
            for leaf in range(leaves):
                relay = RelayAggregatorServer(
                    epsilon=1.0, delta=1e-6, k=k, upstream=root.address,
                    relay_ordinal=leaf)
                await relay.start("127.0.0.1:0")
                relays.append(relay)

            async def push_chunk(leaf, offset, chunk):
                if not chunk:
                    return
                async with AggregatorClient(relays[leaf].address, k=k,
                                            ordinal=offset) as client:
                    await client.push(chunk)

            await asyncio.gather(*[
                push_chunk(index // per_leaf, index, chunk)
                for index, chunk in enumerate(chunked_exports)])
            # A release through one leaf flushes that leaf only; flush the
            # siblings first so the root covers the whole tree.
            for relay in relays[:-1]:
                await relay.forward_flush()
            async with AggregatorClient(relays[-1].address) as client:
                return await client.request_release(seed=seed)
        finally:
            for relay in relays:
                await relay.aclose()


async def _relay_chain_release(chunked_exports, k, seed):
    """Depth-2 chain (clients -> leaf -> mid -> root), release via the leaf."""
    async with await AggregatorServer(
            epsilon=1.0, delta=1e-6, k=k,
            accept_relays=True).start("127.0.0.1:0") as root:
        mid = leaf = None
        try:
            mid = RelayAggregatorServer(
                epsilon=1.0, delta=1e-6, k=k, upstream=root.address,
                relay_ordinal=0, accept_relays=True)
            await mid.start("127.0.0.1:0")
            leaf = RelayAggregatorServer(
                epsilon=1.0, delta=1e-6, k=k, upstream=mid.address,
                relay_ordinal=0)
            await leaf.start("127.0.0.1:0")

            async def push_chunk(ordinal, chunk):
                if not chunk:
                    return
                async with AggregatorClient(leaf.address, k=k,
                                            ordinal=ordinal) as client:
                    await client.push(chunk)

            await asyncio.gather(*[push_chunk(ordinal, chunk)
                                   for ordinal, chunk
                                   in enumerate(chunked_exports)])
            async with AggregatorClient(leaf.address) as client:
                # The RELEASE cascades: leaf flushes to mid and proxies, mid
                # flushes to root and proxies, root releases.
                return await client.request_release(seed=seed)
        finally:
            for relay in (leaf, mid):
                if relay is not None:
                    await relay.aclose()


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=8, deadline=None)
def test_relay_tree_release_bit_identical_over_shapes(counters_list, k, seed):
    """{1x4, 2x2, 4x1} relay trees == one flat 4-client server == offline."""
    exports = [encode_counters(counters, k=k, stream_length=41 * index)
               for index, counters in enumerate(counters_list)]
    chunked = _chunks(exports, 4)
    offline = _offline_release(chunked, k, seed)
    flat = asyncio.run(_network_release(chunked, k, seed))
    assert list(flat.as_dict().items()) == list(offline.as_dict().items())
    for leaves in (1, 2, 4):
        tree = asyncio.run(_relay_tree_release(chunked, k, seed, leaves))
        assert list(tree.as_dict().items()) == list(flat.as_dict().items())
        assert tree.metadata.stream_length == flat.metadata.stream_length
        assert tree.metadata.notes == flat.metadata.notes
        assert tree.metadata.as_dict() == flat.metadata.as_dict()


@given(counters_list=_EXPORT_LISTS, k=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=6, deadline=None)
def test_relay_chain_depth_two_bit_identical(counters_list, k, seed):
    exports = [encode_counters(counters, k=k, stream_length=13 * index)
               for index, counters in enumerate(counters_list)]
    chunked = _chunks(exports, 2)
    offline = _offline_release(chunked, k, seed)
    chained = asyncio.run(_relay_chain_release(chunked, k, seed))
    assert list(chained.as_dict().items()) == list(offline.as_dict().items())
    assert chained.metadata.as_dict() == offline.metadata.as_dict()


# ---------------------------------------------------------------------------
# The fold algebra behind the relay: forwarding trees are shape-invariant,
# pre-reduction is not
# ---------------------------------------------------------------------------

def _session_parts(counters_list, k):
    """One release part per session, as the servers build them."""
    parts = []
    for index, counters in enumerate(counters_list):
        envelope = encode_counters(counters, k=k, stream_length=29 * index)
        parts.append(StreamingMerger(k).add(envelope))
    return parts


def _forward_tree(parts, k, splits):
    """Relay ``parts`` through a random-shape forwarding tree.

    Each internal node forwards its children's parts upstream as summary
    frames (one ``summary_payload`` -> ``add_summary`` round trip per part,
    order preserved) — exactly what a relay hop does.  ``splits`` drives the
    tree shape; the flat part sequence must come out bit-identical no matter
    the shape, because every summary frame is a fixed point of the fold.
    """
    if len(parts) <= 1 or not splits:
        forwarded = parts
    else:
        cut = 1 + splits[0] % (len(parts) - 1)
        forwarded = (_forward_tree(parts[:cut], k, splits[1::2])
                     + _forward_tree(parts[cut:], k, splits[2::2]))
    return [StreamingMerger(k).add_summary(summary_payload(part))
            for part in forwarded]


@given(counters_list=st.lists(_COUNTERS.filter(bool), min_size=1, max_size=8),
       k=st.integers(min_value=1, max_value=16),
       splits=st.lists(st.integers(min_value=0, max_value=7), max_size=6),
       seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_forwarding_tree_shape_never_changes_the_release(counters_list, k,
                                                         splits, seed):
    """Any binary forwarding tree over the same (ordinal, commit order) part
    sequence combines bit-identically to the flat fold."""
    flat = combine_mergers(_session_parts(counters_list, k), k)
    treed = combine_mergers(
        _forward_tree(_session_parts(counters_list, k), k, splits), k)
    assert treed.merged() == flat.merged()
    assert list(treed.merged().items()) == list(flat.merged().items())
    assert treed.frames == flat.frames
    assert treed.total_stream_length == flat.total_stream_length
    mechanism = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k,
                                     strategy=MergeStrategy.TRUSTED_MERGED)
    released_flat = flat.release(mechanism, rng=seed)
    released_tree = treed.release(mechanism, rng=seed)
    assert list(released_tree.as_dict().items()) == \
        list(released_flat.as_dict().items())


def test_pre_reduced_tree_fold_changes_the_answer():
    """Regression for the design constraint: the Agarwal merge is *not*
    associative before compaction, so a leaf that pre-combined its sessions
    into one blob would change the released values.  At k=1 the flat fold
    keeps a survivor; the pre-reduced pairing cancels everything."""
    k = 1
    sessions = [{1: 1.0}, {2: 2.0}, {3: 3.0}, {4: 4.0}]
    flat = combine_mergers(_session_parts(sessions, k), k).merged()
    assert flat == {4: 2.0}
    parts = _session_parts(sessions, k)
    left = combine_mergers(parts[:2], k)
    right = combine_mergers(parts[2:], k)
    pre_reduced = combine_mergers([left, right], k).merged()
    assert pre_reduced != flat
    assert pre_reduced == {}
