"""Property: zero-copy shared-memory sharding is bit-identical to the
pickled-sketch path it replaced.

``sketch_shards_shared`` moves the batch and the per-shard counter exports
through ``multiprocessing.shared_memory`` segments instead of pickling
sketches back from the pool; ``sketch_and_merge_shards`` wraps it with the
legacy ``sketch_streams`` + ``merge_tree`` fallback for key universes the
int64 columnar slots cannot carry.  Both must return *exactly* the summary
the legacy path returns — same keys, same float bits, same dict order — for
every shard count, and ``Pipeline.fit(stream, workers=N)`` must collapse to
the sequential fit (bit-identical, no pool) below its shard-size cutover.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Pipeline
from repro.core.merging import (
    _shard_bounds,
    sketch_and_merge_shards,
    sketch_shards_shared,
)
from repro.exceptions import ParameterError
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import merge_tree

_STREAMS = st.lists(st.integers(min_value=-(2**62), max_value=2**62)
                    | st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=600)


def _legacy_reference(batch, k, num_shards):
    """The pre-shared-memory result: per-shard sketches, merge_tree fan-in.

    Computed in-process — the legacy pool only moved pickles, so the pooled
    result is by construction identical to this.
    """
    shards = [shard for shard in np.array_split(batch, num_shards)
              if shard.size]
    counters = [MisraGriesSketch.from_stream(k, shard).counters()
                for shard in shards]
    return merge_tree(counters, k)


@given(stream=_STREAMS, k=st.integers(1, 32))
@settings(max_examples=10, deadline=None)
def test_shared_memory_sharding_matches_legacy_bit_for_bit(stream, k):
    batch = np.asarray(stream, dtype=np.int64)
    for num_shards in (1, 2, 4):
        expected = _legacy_reference(batch, k, num_shards)
        merged = sketch_shards_shared(batch, k, num_shards)
        assert merged == expected
        assert list(merged) == list(expected)
        assert all(type(value) is float for value in merged.values())


@given(stream=_STREAMS, k=st.integers(1, 32))
@settings(max_examples=10, deadline=None)
def test_dispatcher_matches_legacy_across_dtypes(stream, k):
    for dtype in (np.int64, np.int32, np.uint64):
        batch = np.abs(np.asarray(stream, dtype=np.int64)).astype(dtype)
        expected = _legacy_reference(batch, k, 2)
        merged = sketch_and_merge_shards(batch, k, 2)
        assert merged == expected and list(merged) == list(expected)


def test_uint64_overflow_takes_the_legacy_path():
    """Keys beyond int64 cannot ride the columnar slots; the dispatcher must
    fall back to the pickled-sketch transfer and still agree with it."""
    batch = np.array([2**63 + 5, 2**63 + 5, 7, 7, 7, 2**64 - 1],
                     dtype=np.uint64)
    expected = _legacy_reference(batch, 4, 2)
    merged = sketch_and_merge_shards(batch, 4, 2)
    assert merged == expected and list(merged) == list(expected)
    assert 2**63 + 5 in merged


def test_shard_bounds_replicate_array_split():
    for total in (1, 2, 5, 7, 100, 101, 1023):
        for num_shards in (1, 2, 3, 4, 8):
            batch = np.arange(total)
            expected = [(int(shard[0]), int(shard[-1]) + 1)
                        for shard in np.array_split(batch, num_shards)
                        if shard.size]
            assert _shard_bounds(total, num_shards) == expected


# ---------------------------------------------------------------------------
# Pipeline cutover (workers=N on short streams stays sequential)
# ---------------------------------------------------------------------------

def _pipe(k=16):
    return Pipeline(sketch="misra_gries", mechanism="pmg", k=k,
                    epsilon=1.0, delta=1e-6)


def test_short_stream_collapses_to_the_sequential_fit():
    """Below the cutover the sharded fit is the sequential fit: bit-identical
    summary, no process pool involved."""
    stream = np.arange(1000, dtype=np.int64) % 37
    assert len(stream) < Pipeline._MIN_SHARD_ELEMENTS
    sequential = _pipe().fit(stream)
    sharded = _pipe().fit(stream, workers=4)
    assert sharded.counters() == sequential.counters()
    assert list(sharded.counters()) == list(sequential.counters())


def test_min_shard_elements_override_forces_real_sharding():
    stream = np.arange(1000, dtype=np.int64) % 37
    pipe = _pipe()
    pipe.fit(stream, workers=4, min_shard_elements=250)
    expected = _legacy_reference(stream, 16, 4)
    assert pipe.counters() == expected
    assert list(pipe.counters()) == list(expected)


def test_shard_count_scales_with_stream_length():
    """workers=4 with ~2.5 shards' worth of elements uses 2 shards, matching
    the legacy 2-shard reference (not the 4-shard one)."""
    stream = np.arange(500, dtype=np.int64) % 23
    pipe = _pipe()
    pipe.fit(stream, workers=4, min_shard_elements=200)
    assert pipe.counters() == _legacy_reference(stream, 16, 2)
    assert pipe.counters() != _legacy_reference(stream, 16, 4)


def test_min_shard_elements_rejects_invalid_values():
    stream = np.arange(100, dtype=np.int64)
    with pytest.raises(ParameterError):
        _pipe().fit(stream, workers=2, min_shard_elements=0)
    with pytest.raises(ParameterError):
        _pipe().fit(stream, workers=2, min_shard_elements=-5)
