"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in editable mode on machines without network access
(no ``wheel`` package available for PEP 660 editable builds):

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
