"""Experiment E12 — continual observation with PMG as the subroutine.

The paper positions Algorithm 2 as a drop-in subroutine for the continual
monitoring setting of Chan et al.  This experiment quantifies the two
composition strategies implemented in :mod:`repro.core.continual`:

* ``blocks`` — full budget per release, but a prefix query sums one release
  per block, so the error of a running total grows linearly with the number
  of blocks;
* ``binary_tree`` — the budget is split over ``O(log T)`` levels, but a prefix
  query sums only ``O(log T)`` releases, so the error grows logarithmically.

The table reports, per number of blocks, the number of releases a query sums
and the error of the running estimate of the stream's heaviest element and of
a mid-ranked element.
"""

import pytest

from repro.analysis import format_table
from repro.core import ContinualHeavyHitters
from repro.sketches import ExactCounter
from repro.streams import zipf_stream

from _common import print_experiment, run_once

K = 64
EPSILON, DELTA = 1.0, 1e-6
N = 32_000
UNIVERSE = 500
BLOCK_COUNTS = [4, 16, 64]


def _run() -> list:
    stream = zipf_stream(N, UNIVERSE, exponent=1.3, rng=60)
    truth = ExactCounter.from_stream(stream)
    heavy_element, heavy_count = truth.top(1)[0]
    mid_element, mid_count = truth.top(12)[-1]
    rows = []
    for blocks in BLOCK_COUNTS:
        block_size = N // blocks
        for strategy in ("blocks", "binary_tree"):
            monitor = ContinualHeavyHitters(k=K, epsilon=EPSILON, delta=DELTA,
                                            block_size=block_size, strategy=strategy,
                                            max_blocks=blocks, rng=61 + blocks)
            monitor.process_stream(stream)
            rows.append({
                "blocks": blocks,
                "strategy": strategy,
                "releases per query": monitor.releases_per_query(),
                "per-release epsilon": monitor.per_release_budget()["epsilon"],
                "heavy elem err": abs(monitor.estimate(heavy_element) - heavy_count),
                "mid elem err": abs(monitor.estimate(mid_element) - mid_count),
            })
    return rows


@pytest.mark.experiment("E12")
def test_e12_continual_observation(benchmark):
    rows = run_once(benchmark, _run)
    by_key = {(row["blocks"], row["strategy"]): row for row in rows}
    # Query complexity: linear for blocks, logarithmic for the tree.
    assert by_key[(64, "blocks")]["releases per query"] == 64
    assert by_key[(64, "binary_tree")]["releases per query"] <= 7
    # With many blocks the tree's mid-element estimate is no worse than the
    # block strategy's (which loses the element to per-block thresholds).
    assert (by_key[(64, "binary_tree")]["mid elem err"]
            <= by_key[(64, "blocks")]["mid elem err"] + 1e-9)
    print_experiment("E12", "Continual observation: blocks vs binary tree composition",
                     format_table(rows))
