"""Experiment E1 — Fact 7: Misra-Gries error is at most n/(k+1) and this is tight.

Reproduces the claim behind Fact 7: on any stream the MG sketch of size k
underestimates every frequency by at most n/(k+1), and there are streams
(k+1 equally-frequent distinct elements) on which no k-counter summary can do
better.  The table reports, for Zipf and worst-case streams, the measured
maximum error next to the n/(k+1) bound.
"""

import pytest

from repro.analysis import format_table
from repro.analysis.metrics import max_error
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import tight_error_stream, zipf_stream

from _common import print_experiment, run_once

N = 100_000
UNIVERSE = 10_000
K_VALUES = [8, 32, 128, 256]


def _run() -> list:
    rows = []
    zipf = zipf_stream(N, UNIVERSE, exponent=1.1, rng=1)
    zipf_truth = ExactCounter.from_stream(zipf).counters()
    for k in K_VALUES:
        sketch = MisraGriesSketch.from_stream(k, zipf)
        rows.append({
            "workload": "zipf(1.1)",
            "n": len(zipf),
            "k": k,
            "measured max error": max_error(sketch, zipf_truth),
            "bound n/(k+1)": len(zipf) / (k + 1),
        })
    for k in K_VALUES:
        worst = tight_error_stream(k, N)
        worst_truth = ExactCounter.from_stream(worst).counters()
        sketch = MisraGriesSketch.from_stream(k, worst)
        rows.append({
            "workload": "worst-case (k+1 distinct)",
            "n": len(worst),
            "k": k,
            "measured max error": max_error(sketch, worst_truth),
            "bound n/(k+1)": len(worst) / (k + 1),
        })
    return rows


@pytest.mark.experiment("E1")
def test_e1_mg_error_bound(benchmark):
    rows = run_once(benchmark, _run)
    for row in rows:
        assert row["measured max error"] <= row["bound n/(k+1)"] + 1e-9
        if row["workload"].startswith("worst"):
            # Tightness: the worst-case stream achieves the bound exactly.
            assert row["measured max error"] == pytest.approx(row["bound n/(k+1)"])
    print_experiment("E1", "MG sketch error vs the n/(k+1) bound (Fact 7)",
                     format_table(rows))
