"""Experiment E9 — GSHM calibration: exact Theorem 23 predicate vs loose Lemma 24.

For a grid of (epsilon, delta, l) the table reports the Gaussian noise sigma
and threshold produced by the loose closed form of Lemma 24 and by tightening
sigma against the exact Theorem 23 predicate, plus the resulting high
probability error bound (1 + 2 tau).  The exact calibration is what a
deployment should use; the loose one is what the asymptotic statements are
easiest to read from.
"""

import pytest

from repro.analysis import format_table
from repro.core import calibrate_gshm, gshm_delta

from _common import print_experiment, run_once

GRID = [
    (0.1, 1e-6, 16), (0.1, 1e-6, 256),
    (0.5, 1e-6, 16), (0.5, 1e-6, 256),
    (1.0, 1e-6, 64), (1.0, 1e-8, 64),
    (0.5, 1e-8, 1024),
]


def _run() -> list:
    rows = []
    for epsilon, delta, l in GRID:
        sigma_loose, tau_loose = calibrate_gshm(epsilon, delta, l, method="loose")
        sigma_exact, tau_exact = calibrate_gshm(epsilon, delta, l, method="exact")
        rows.append({
            "epsilon": epsilon,
            "delta": delta,
            "l": l,
            "sigma (loose)": sigma_loose,
            "sigma (exact)": sigma_exact,
            "sigma ratio": sigma_loose / sigma_exact,
            "error bound (loose)": 1.0 + 2.0 * tau_loose,
            "error bound (exact)": 1.0 + 2.0 * tau_exact,
            "delta check (exact)": gshm_delta(sigma_exact, tau_exact, epsilon, l),
        })
    return rows


@pytest.mark.experiment("E9")
def test_e9_gshm_calibration(benchmark):
    rows = run_once(benchmark, _run)
    for row in rows:
        # Both calibrations are valid; the exact one is never worse and
        # typically saves a constant factor in noise.
        assert row["delta check (exact)"] <= row["delta"] * (1 + 1e-3)
        assert row["sigma (exact)"] <= row["sigma (loose)"] * (1 + 1e-9)
        assert row["error bound (exact)"] <= row["error bound (loose)"] * (1 + 1e-9)
    assert any(row["sigma ratio"] > 1.2 for row in rows)
    print_experiment("E9", "GSHM calibration: exact Theorem 23 vs loose Lemma 24",
                     format_table(rows))
