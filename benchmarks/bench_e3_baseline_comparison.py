"""Experiment E3 — PMG vs Chan et al. vs corrected Böhler-Kerschbaum.

The baselines add noise scaled to the sketch's global sensitivity k, so their
error grows linearly with the sketch size — making the sketch more accurate
(larger k) makes the release *less* accurate.  PMG's noise does not grow with
k, so its total error keeps improving until the sketch error floor.  The table
reports the mean (over repetitions) maximum error of each mechanism per k, and
the series makes the crossover structure explicit: PMG dominates everywhere,
and for the baselines there is an interior optimum k beyond which error rises
again.
"""

import pytest

from repro.analysis import format_table, summarize_errors
from repro.baselines import BohlerKerschbaumMG, ChanPrivateMisraGries
from repro.core import PrivateMisraGries
from repro.dp.rng import spawn_rngs
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import zipf_stream

from _common import print_experiment, run_once

N = 60_000
UNIVERSE = 5_000
REPETITIONS = 5
K_VALUES = [16, 64, 256, 512]
EPSILON, DELTA = 1.0, 1e-6


def _mean_max_error(release_fn, truth, seeds):
    errors = []
    for rng in seeds:
        histogram = release_fn(rng)
        errors.append(summarize_errors(histogram, truth).max_error)
    return sum(errors) / len(errors)


def _run() -> list:
    stream = zipf_stream(N, UNIVERSE, exponent=1.2, rng=3)
    truth = ExactCounter.from_stream(stream).counters()
    rows = []
    for k in K_VALUES:
        sketch = MisraGriesSketch.from_stream(k, stream)
        seeds = spawn_rngs(999 + k, REPETITIONS)
        pmg = PrivateMisraGries(epsilon=EPSILON, delta=DELTA)
        chan = ChanPrivateMisraGries(epsilon=EPSILON, k=k, delta=DELTA)
        bk = BohlerKerschbaumMG(epsilon=EPSILON, delta=DELTA, k=k)
        rows.append({
            "k": k,
            "sketch err n/(k+1)": N / (k + 1),
            "PMG": _mean_max_error(lambda rng: pmg.release(sketch, rng=rng), truth, seeds),
            "Chan (thresholded)": _mean_max_error(lambda rng: chan.release(sketch, rng=rng),
                                                  truth, spawn_rngs(77 + k, REPETITIONS)),
            "BK (corrected)": _mean_max_error(lambda rng: bk.release(sketch, rng=rng),
                                              truth, spawn_rngs(55 + k, REPETITIONS)),
        })
    return rows


@pytest.mark.experiment("E3")
def test_e3_baseline_comparison(benchmark):
    rows = run_once(benchmark, _run)
    # PMG is never worse than either baseline at any sketch size.
    for row in rows:
        assert row["PMG"] <= row["Chan (thresholded)"] * 1.05
        assert row["PMG"] <= row["BK (corrected)"] * 1.05
    # PMG keeps improving with k (dominated by the sketch term), while the
    # baselines eventually get *worse* as k grows (noise term k/eps dominates).
    pmg_errors = [row["PMG"] for row in rows]
    assert pmg_errors[-1] < pmg_errors[0]
    chan_errors = [row["Chan (thresholded)"] for row in rows]
    assert chan_errors[-1] > min(chan_errors)
    print_experiment("E3", "Max error vs k: PMG against the k/eps-noise baselines",
                     format_table(rows))
