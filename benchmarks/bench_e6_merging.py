"""Experiment E6 — Section 7: merging sketches across streams.

Two claims are exercised:

1. Corollary 18: no matter how many sketches are merged, the merged counters
   of neighbouring inputs differ by at most 1 per counter (observed values
   reported against the bound);
2. accuracy: with a trusted aggregator the error stays flat as the number of
   streams grows, while the untrusted aggregator (noise before merging) loses
   moderately-heavy elements at a rate that grows with the number of streams.
"""

import pytest

from repro.analysis import format_table
from repro.core import MergeStrategy, PrivateMergedRelease
from repro.dp.sensitivity import counter_difference
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.sketches.merge import merge_many
from repro.streams import split_contiguous, zipf_stream

from _common import print_experiment, run_once

K = 64
EPSILON, DELTA = 1.0, 1e-6
N = 60_000


def _neighbour_structure_rows() -> list:
    rows = []
    stream = zipf_stream(6_000, 200, exponent=1.2, rng=8)
    for num_streams in (2, 8, 32):
        parts = split_contiguous(stream, num_streams)
        merged = merge_many([MisraGriesSketch.from_stream(K, part).counters()
                             for part in parts], K)
        worst_linf = 0.0
        worst_keys = 0
        # Neighbouring datasets: delete one element from one of the streams,
        # leaving every other stream untouched (Section 7's neighbourhood).
        for index in range(0, len(stream), len(stream) // 12):
            part_index = min(index // (len(stream) // num_streams + 1), num_streams - 1)
            offset = min(index - part_index * len(parts[0]), len(parts[part_index]) - 1)
            neighbour_parts = [list(part) for part in parts]
            del neighbour_parts[part_index][offset]
            merged_neighbour = merge_many([MisraGriesSketch.from_stream(K, part).counters()
                                           for part in neighbour_parts], K)
            diff = counter_difference(merged, merged_neighbour)
            if diff:
                worst_linf = max(worst_linf, max(abs(v) for v in diff.values()))
                worst_keys = max(worst_keys, len(diff))
        rows.append({
            "streams": num_streams,
            "k": K,
            "max per-counter diff (observed)": worst_linf,
            "bound (Cor. 18)": 1.0,
            "max differing counters": worst_keys,
            "bound": K,
        })
    return rows


def _accuracy_rows() -> list:
    stream = zipf_stream(N, 1_000, exponent=1.3, rng=9)
    counter = ExactCounter.from_stream(stream)
    truth = counter.counters()
    top = [element for element, _ in counter.top(20)]
    rows = []
    for num_streams in (2, 8, 32):
        parts = split_contiguous(stream, num_streams)
        sketches = [MisraGriesSketch.from_stream(K, part) for part in parts]
        for strategy in MergeStrategy:
            release = PrivateMergedRelease(epsilon=EPSILON, delta=DELTA, k=K, strategy=strategy)
            histogram = release.release(sketches, rng=10 + num_streams)
            top_error = sum(abs(histogram.estimate(x) - truth[x]) for x in top) / len(top)
            surviving = sum(1 for x in top if x in histogram)
            rows.append({
                "streams": num_streams,
                "strategy": strategy.value,
                "mean err (top-20)": top_error,
                "top-20 released": surviving,
            })
    return rows


@pytest.mark.experiment("E6")
def test_e6_merged_sensitivity_structure(benchmark):
    rows = run_once(benchmark, _neighbour_structure_rows)
    for row in rows:
        assert row["max per-counter diff (observed)"] <= 1.0 + 1e-9
    # The per-counter bound does not degrade as the number of merges grows.
    assert rows[-1]["max per-counter diff (observed)"] <= rows[0]["bound (Cor. 18)"]
    print_experiment("E6a", "Per-counter difference of merged sketches for neighbouring inputs",
                     format_table(rows))


@pytest.mark.experiment("E6")
def test_e6_merging_accuracy(benchmark):
    rows = run_once(benchmark, _accuracy_rows)
    untrusted_survivors = [row["top-20 released"] for row in rows
                           if row["strategy"] == "untrusted"]
    trusted_survivors = [row["top-20 released"] for row in rows
                         if row["strategy"] == "trusted_merged"]
    # The untrusted route loses coverage as streams multiply; the trusted
    # route's coverage stays (roughly) flat and dominates it at 32 streams.
    assert untrusted_survivors[-1] <= untrusted_survivors[0]
    assert trusted_survivors[-1] >= untrusted_survivors[-1]
    print_experiment("E6b", "Merged release accuracy vs number of streams",
                     format_table(rows))
