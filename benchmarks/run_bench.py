"""Non-interactive entry point for the sketch performance suite.

Runs every workload in :mod:`bench_perf_suite` once, appends the resulting
record to ``BENCH_sketch.json`` at the repository root (so every PR extends
the same performance trajectory) and prints a human-readable summary.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full suite
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI-sized run
    PYTHONPATH=src python benchmarks/run_bench.py --dry-run  # don't write
    cd benchmarks && python -m run_bench                     # module form

Exit status is non-zero if the acceptance-criteria speedups regress below
their floors (>= 10x on the all-distinct k=1024 workload, >= 3x on the E11
Zipf k=1024 workload), so the script can gate CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf_suite import BENCH_PATH, append_record, format_record, run_suite

#: Acceptance floors for optimized-vs-seed speedups (ISSUE 1 criteria).
FLOORS = {
    "all_distinct_k1024_batch": 10.0,
    "zipf_e11_k1024_batch": 3.0,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="smaller streams (CI-sized, ~seconds)")
    parser.add_argument("--dry-run", action="store_true",
                        help="run and print, but do not append to the history file")
    parser.add_argument("--output", type=Path, default=BENCH_PATH,
                        help=f"history file to append to (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    record = run_suite(quick=args.quick)
    print(format_record(record))
    if not args.dry_run:
        path = append_record(record, args.output)
        print(f"\nappended record to {path}")

    failures = [name for name, floor in FLOORS.items()
                if record["speedups"].get(name, 0.0) < floor]
    if failures:
        print(f"perf regression: {failures} below acceptance floors {FLOORS}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
