"""Non-interactive entry point for the performance suite.

Runs the selected workload groups in :mod:`bench_perf_suite`, appends the
resulting record to ``BENCH_sketch.json`` at the repository root (so every PR
extends the same performance trajectory) and prints a human-readable summary.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full suite
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI-sized run
    PYTHONPATH=src python benchmarks/run_bench.py --dry-run  # don't write
    PYTHONPATH=src python benchmarks/run_bench.py --workloads merge,release
    cd benchmarks && python -m run_bench                     # module form

Exit status is non-zero if the acceptance-criteria speedups regress below
their floors (>= 10x on the all-distinct k=1024 sketch workload, >= 3x on
the E11 Zipf k=1024 workload, >= 10x on the m=256 k=1024 merge workload,
>= 8x on the framed streaming-merge workload, >= 0.5x on the socket
aggregation service vs the offline framed fold, >= 0.5x on the WAL-backed
service vs the in-memory one, >= 0.7x on the 2x4 relay tree vs the flat
8-client server, >= 3x on the trusted-sum release workload, >= 0.9x on the
auth-on served-release cycle vs the open server, and — when a compiled kernel provider is present — >= 8x
over the seed plus >= 3x over the vectorized python batch path on the zipf
k=64 update workload and >= 2x on the m=256 k=1024 columnar merge fold), so
the script can gate CI.
``--workloads`` lets the merge/release floors gate independently of the
sketch floors: only floors whose workload group actually ran are enforced,
and the compiled-kernel floors are waived (with a notice) when the record
shows no compiled provider was available.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf_suite import (
    BENCH_PATH,
    WORKLOAD_GROUPS,
    append_record,
    format_record,
    run_suite,
)

#: Acceptance floors for optimized-vs-seed speedups, keyed by speedup name,
#: valued (workload group, floor).  A floor only gates when its group ran.
FLOORS = {
    "all_distinct_k1024_batch": ("sketch", 10.0),
    "zipf_e11_k1024_batch": ("sketch", 3.0),
    "merge_m256_k1024_arrays": ("merge", 10.0),
    "framed_merge_m256_k1024_streaming": ("framed_merge", 8.0),
    # The socket service may cost at most 2x the offline framed fold.
    "net_aggregate_m256_k1024_socket_4clients": ("net_aggregate", 0.5),
    # Crash safety (WAL spools + fsync commits) may cost at most 2x.
    "durability_m256_k1024_wal_sqlite_4clients": ("durability", 0.5),
    # The 2-leaves x 4-clients relay tree vs one flat 8-client server: the
    # extra hop may cost at most ~1.4x the flat service.
    "relay_m256_k1024_relay_2x4": ("relay", 0.7),
    "release_trusted_sum_k1024_vectorized": ("release", 3.0),
    # Requiring session tokens (one hmac.compare_digest at HELLO) must stay
    # in the noise: auth-on serving may cost at most ~1.1x the open server.
    "release_served_auth_k256_auth_on": ("release", 0.9),
    # The load harness's bounded concurrency vs one client at a time.  On
    # loopback the single server core saturates either way (measured
    # 1.2-2.6x depending on population size), so the floor only pins that
    # the semaphore/task machinery never makes the wave *slower* than the
    # sequential loop.
    "loadgen_flat_k64_concurrent": ("loadgen", 1.05),
    # Observability (counters, histograms, trace spans) is read-side only
    # and must stay in the noise: obs-on serving >= 0.9x obs-off.
    "obs_serve_k256_obs_on": ("loadgen", 0.9),
    "kernels_update_zipf_k64_compiled_batch": ("kernels", 8.0),
    "kernels_update_zipf_k64_compiled_vs_python": ("kernels", 3.0),
    "kernels_fold_m256_k1024_compiled_vs_python": ("kernels", 2.0),
}

#: Floors that only exist when a compiled kernel provider is available;
#: waived (not failed) when the record's ``kernels`` stanza says the run
#: fell back to pure python.
COMPILED_FLOORS = frozenset(name for name in FLOORS if "compiled" in name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help="smaller streams (CI-sized, ~seconds)")
    parser.add_argument("--dry-run", action="store_true",
                        help="run and print, but do not append to the history file")
    parser.add_argument("--workloads", type=str, default=None, metavar="GROUPS",
                        help="comma-separated workload groups to run "
                             f"(default: all of {','.join(WORKLOAD_GROUPS)})")
    parser.add_argument("--output", type=Path, default=BENCH_PATH,
                        help=f"history file to append to (default: {BENCH_PATH})")
    args = parser.parse_args(argv)

    selected = None
    if args.workloads is not None:
        selected = [name.strip() for name in args.workloads.split(",") if name.strip()]
        unknown = [name for name in selected if name not in WORKLOAD_GROUPS]
        if unknown:
            parser.error(f"unknown workload group(s) {unknown}; "
                         f"choose from {','.join(WORKLOAD_GROUPS)}")

    record = run_suite(quick=args.quick, workloads=selected)
    print(format_record(record))
    if not args.dry_run:
        path = append_record(record, args.output)
        print(f"\nappended record to {path}")

    ran = set(record.get("workloads", []))
    active = {name: floor for name, (group, floor) in FLOORS.items() if group in ran}
    if not record.get("kernels", {}).get("available", False):
        waived = sorted(name for name in active if name in COMPILED_FLOORS)
        for name in waived:
            del active[name]
        if waived:
            print(f"no compiled kernel provider; waiving floors {waived}")
    failures = [name for name, floor in active.items()
                if record["speedups"].get(name, 0.0) < floor]
    if failures:
        print(f"perf regression: {failures} below acceptance floors "
              f"{ {name: active[name] for name in failures} }", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
