"""Experiment E8 — Theorem 30: PAMG + GSHM vs flattened PMG with group privacy.

For a user-level target of (epsilon, delta), compares the two release routes
as the contribution bound m grows:

* calibrated noise scale and threshold of each route (the analytic crossover);
* measured mean error on the 20 most popular elements of a synthetic
  user-level workload.

Expected shape: the flattened route's noise and threshold grow linearly in m,
the PAMG route's are independent of m (they scale with sqrt(k)), so PAMG wins
once m is large relative to sqrt(k) (and loses for m = 1, where plain PMG is
the better tool — exactly the paper's framing).
"""

import pytest

from repro.analysis import format_table
from repro.core import UserLevelRelease
from repro.sketches import ExactCounter
from repro.streams import distinct_user_stream

from _common import print_experiment, run_once

K = 64
EPSILON, DELTA = 1.0, 1e-6
M_VALUES = [1, 2, 4, 8, 16, 32]
NUM_USERS = 4_000
UNIVERSE = 1_000


def _run() -> list:
    rows = []
    for m in M_VALUES:
        config = UserLevelRelease(epsilon=EPSILON, delta=DELTA, k=K, max_contribution=m)
        noise = config.noise_summary()
        stream = distinct_user_stream(NUM_USERS, UNIVERSE, max_contribution=m,
                                      exponent=1.3, rng=30 + m)
        truth = ExactCounter().update_sets(stream).counters()
        top = sorted(truth, key=truth.get, reverse=True)[:20]

        def top_error(histogram):
            return sum(abs(histogram.estimate(x) - truth[x]) for x in top) / len(top)

        pamg_error = sum(top_error(config.release_pamg(stream, rng=seed)) for seed in range(3)) / 3
        flattened_error = sum(top_error(config.release_flattened(stream, rng=seed))
                              for seed in range(3)) / 3
        rows.append({
            "m": m,
            "k": K,
            "PAMG sigma": noise["pamg_sigma"],
            "PAMG threshold": noise["pamg_threshold"],
            "flat Laplace scale": noise["flattened_laplace_scale"],
            "flat threshold": noise["flattened_threshold"],
            "PAMG err (top-20)": pamg_error,
            "flat err (top-20)": flattened_error,
        })
    return rows


@pytest.mark.experiment("E8")
def test_e8_pamg_vs_group_privacy(benchmark):
    rows = run_once(benchmark, _run)
    # Analytic shape: flattened noise/threshold grow linearly with m, PAMG's
    # stay constant.
    assert rows[-1]["flat Laplace scale"] == pytest.approx(
        rows[0]["flat Laplace scale"] * M_VALUES[-1])
    assert rows[-1]["PAMG sigma"] == pytest.approx(rows[0]["PAMG sigma"])
    # Measured crossover: flattened is competitive (or better) at m=1 but PAMG
    # wins by the largest m.
    assert rows[-1]["PAMG err (top-20)"] < rows[-1]["flat err (top-20)"]
    print_experiment("E8", "User-level release: PAMG+GSHM vs flattened PMG via group privacy",
                     format_table(rows))
