"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence


def run_once(benchmark, func: Callable[[], object]):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def print_experiment(experiment_id: str, claim: str, table: str) -> None:
    """Standard header + table output recorded in EXPERIMENTS.md."""
    banner = f"[{experiment_id}] {claim}"
    print()
    print(banner)
    print("-" * len(banner))
    print(table)
