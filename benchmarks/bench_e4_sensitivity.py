"""Experiment E4 — Lemma 8: the structure of neighbouring Misra-Gries sketches.

Measures, over exhaustive small-universe enumeration and sampled larger
streams, the worst observed

* l1 / l2 / l-infinity distance between the MG sketches of neighbouring
  streams (deletion neighbours), and
* the number of stored keys on which they differ,

and compares them with the Lemma 8 guarantees: at most 2 differing keys
(counters at most 1), per-counter difference at most 1, l1 at most k.
"""

import pytest

from repro.analysis import format_table
from repro.dp.sensitivity import all_streams, empirical_sensitivity
from repro.sketches import MisraGriesSketch
from repro.streams import mg_worst_case_stream, zipf_stream

from _common import print_experiment, run_once


def _sketch_fn(k):
    def build(stream):
        return MisraGriesSketch.from_stream(k, stream).counters()
    return build


def _run() -> list:
    rows = []
    # Exhaustive: every stream of length 6 over a universe of 4 elements.
    for k in (2, 3):
        report = empirical_sensitivity(_sketch_fn(k), all_streams(range(4), 6))
        rows.append({
            "workload": "exhaustive |U|=4, n=6",
            "k": k,
            "max l1": report.max_l1,
            "max l2": report.max_l2,
            "max linf": report.max_linf,
            "max differing keys": report.max_differing_keys,
            "bound l1 (Chan et al.)": float(k),
            "bound linf": 1.0,
            "pairs": report.pairs_checked,
        })
    # Sampled: longer Zipf and worst-case streams.
    for k in (8, 32):
        streams = [zipf_stream(2_000, 100, exponent=1.2, rng=seed) for seed in range(3)]
        streams.append(mg_worst_case_stream(k, repetitions=2_000 // (k + 1)))
        report = empirical_sensitivity(_sketch_fn(k), streams,
                                       max_pairs_per_stream=60, rng=0)
        rows.append({
            "workload": "zipf + worst-case, n=2000",
            "k": k,
            "max l1": report.max_l1,
            "max l2": report.max_l2,
            "max linf": report.max_linf,
            "max differing keys": report.max_differing_keys,
            "bound l1 (Chan et al.)": float(k),
            "bound linf": 1.0,
            "pairs": report.pairs_checked,
        })
    return rows


@pytest.mark.experiment("E4")
def test_e4_sensitivity_structure(benchmark):
    rows = run_once(benchmark, _run)
    for row in rows:
        assert row["max l1"] <= row["bound l1 (Chan et al.)"] + 1e-9
        assert row["max linf"] <= 1.0 + 1e-9
        assert row["max differing keys"] <= row["k"]
    # The worst-case l1 actually reaches k (the decrement-all case), which is
    # why noise proportional to plain global sensitivity is so expensive.
    exhaustive = [row for row in rows if row["workload"].startswith("exhaustive")]
    assert any(row["max l1"] == row["bound l1 (Chan et al.)"] for row in exhaustive)
    print_experiment("E4", "Observed sensitivity of the MG sketch vs the Lemma 8 structure",
                     format_table(rows))
