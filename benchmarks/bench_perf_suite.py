"""Sketch-engine performance suite (decrement-heavy + E11 Zipf workloads).

Measures the update throughput of the optimized Misra-Gries engine against
the frozen O(k) reference implementation (the seed engine preserved in
:mod:`repro.sketches._reference`) on

* an adversarial **all-distinct** stream with ``k = 1024`` — every element is
  new, so the stream alternates decrement rounds with evictions, the exact
  regime where the seed's O(k) branches collapsed; and
* the **E11 Zipf workload** (``n = 100_000``, universe 50 000, exponent 1.2,
  seed 50) at ``k in (64, 256, 1024)``; plus
* the SpaceSaving baseline on the all-distinct stream (heap vs min-scan).

Each invocation appends one JSON record to ``BENCH_sketch.json`` at the repo
root so the performance trajectory is preserved across PRs.  Run it with::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick]

The record includes the speedup ratios the acceptance criteria track:
``all_distinct_k1024`` optimized-vs-reference (target >= 10x) and
``zipf_k1024`` (target >= 3x).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:  # direct invocation without PYTHONPATH
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.sketches import MisraGriesSketch, SpaceSavingSketch
from repro.sketches._reference import ReferenceMisraGries
from repro.streams import uniform_stream, zipf_stream

BENCH_PATH = _REPO_ROOT / "BENCH_sketch.json"

#: The E11 workload parameters (benchmarks/bench_e11_performance.py).
E11_N = 100_000
E11_UNIVERSE = 50_000
E11_EXPONENT = 1.2
E11_RNG = 50


def _elems_per_sec(ingest: Callable[[], object], n: int) -> float:
    start = time.perf_counter()
    ingest()
    elapsed = time.perf_counter() - start
    return n / elapsed if elapsed > 0 else float("inf")


def _measure(workload: str, k: int, n: int, mode: str,
             ingest: Callable[[], object]) -> Dict:
    return {"workload": workload, "k": k, "n": n, "mode": mode,
            "elems_per_sec": round(_elems_per_sec(ingest, n), 1)}


def run_suite(quick: bool = False) -> Dict:
    """Run every workload once and return the JSON-ready record."""
    rows: List[Dict] = []
    k = 1024

    # -- adversarial all-distinct stream (decrement-heavy) -------------------
    n_opt = 50_000 if quick else 200_000
    n_ref = 5_000 if quick else 20_000
    distinct_opt = np.arange(n_opt, dtype=np.int64)
    distinct_list = distinct_opt.tolist()
    rows.append(_measure("all_distinct", k, n_ref, "reference_seed",
                         lambda: ReferenceMisraGries.from_stream(k, range(n_ref))))
    rows.append(_measure("all_distinct", k, n_opt, "optimized_sequential",
                         lambda: _sequential(MisraGriesSketch(k), distinct_list)))
    rows.append(_measure("all_distinct", k, n_opt, "optimized_batch",
                         lambda: MisraGriesSketch(k).update_batch(distinct_opt)))

    # -- E11 Zipf workload ----------------------------------------------------
    zipf = zipf_stream(E11_N // 4 if quick else E11_N, E11_UNIVERSE,
                       exponent=E11_EXPONENT, rng=E11_RNG, as_array=True)
    zipf_list = zipf.tolist()
    zipf_ref = zipf_list[:n_ref]
    for size in (64, 256, 1024):
        rows.append(_measure("zipf_e11", size, len(zipf_ref), "reference_seed",
                             lambda size=size: ReferenceMisraGries.from_stream(size, zipf_ref)))
        rows.append(_measure("zipf_e11", size, len(zipf), "optimized_sequential",
                             lambda size=size: _sequential(MisraGriesSketch(size), zipf_list)))
        rows.append(_measure("zipf_e11", size, len(zipf), "optimized_batch",
                             lambda size=size: MisraGriesSketch(size).update_batch(zipf)))

    # -- hot-set stream: universe fits in the sketch, pure Branch-1 traffic ---
    # This is where the vectorized path collapses whole chunks into one bulk
    # increment per key (production-style traffic over a bounded key space).
    hot = uniform_stream(4 * n_opt, 512, rng=7, as_array=True)
    hot_list = hot.tolist()
    rows.append(_measure("hot_set", k, n_ref, "reference_seed",
                         lambda: ReferenceMisraGries.from_stream(k, hot_list[:n_ref])))
    rows.append(_measure("hot_set", k, len(hot), "optimized_sequential",
                         lambda: _sequential(MisraGriesSketch(k), hot_list)))
    rows.append(_measure("hot_set", k, len(hot), "optimized_batch",
                         lambda: MisraGriesSketch(k).update_batch(hot)))

    # -- SpaceSaving baseline (heap eviction) ---------------------------------
    rows.append(_measure("all_distinct_space_saving", k, n_opt, "optimized_heap",
                         lambda: _sequential(SpaceSavingSketch(k), distinct_list)))

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "quick": quick,
        "results": rows,
        "speedups": _speedups(rows),
    }
    return record


def _sequential(sketch, elements: List[int]):
    update = sketch.update
    for element in elements:
        update(element)
    return sketch


def _speedups(rows: List[Dict]) -> Dict[str, float]:
    """Optimized-vs-reference throughput ratios per workload/k."""
    by_key: Dict = {}
    for row in rows:
        by_key[(row["workload"], row["k"], row["mode"])] = row["elems_per_sec"]
    speedups: Dict[str, float] = {}
    for (workload, k, mode), rate in sorted(by_key.items()):
        if mode == "reference_seed":
            continue
        reference = by_key.get((workload, k, "reference_seed"))
        if reference:
            speedups[f"{workload}_k{k}_{mode.replace('optimized_', '')}"] = round(
                rate / reference, 2)
    return speedups


def append_record(record: Dict, path: Path = BENCH_PATH) -> Path:
    """Append ``record`` to the JSON history file (a list of run records).

    An unreadable history file (e.g. truncated by an interrupted write) is
    moved aside to ``<name>.corrupt`` rather than silently overwritten, so
    the cross-PR trajectory is never destroyed by one bad run.
    """
    history: List[Dict] = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            backup = path.with_name(path.name + ".corrupt")
            path.replace(backup)
            print(f"warning: {path} was unreadable; moved it to {backup} "
                  "and started a fresh history", file=sys.stderr)
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return path


def format_record(record: Dict) -> str:
    lines = [f"sketch perf suite @ {record['timestamp']} "
             f"(python {record['python']}, quick={record['quick']})"]
    for row in record["results"]:
        lines.append(f"  {row['workload']:>28s}  k={row['k']:<5d} "
                     f"{row['mode']:<21s} {row['elems_per_sec']:>14,.0f} elem/s")
    lines.append("  speedups vs seed engine:")
    for name, ratio in record["speedups"].items():
        lines.append(f"    {name:<42s} {ratio:>8.1f}x")
    return "\n".join(lines)
