"""Performance suite: sketch engine, aggregation/release tier, runner.

Workload groups (select with ``run_bench.py --workloads``):

``sketch``
    Update throughput of the optimized Misra-Gries engine against the frozen
    O(k) reference (the seed engine preserved in
    :mod:`repro.sketches._reference`) on the adversarial all-distinct stream,
    the E11 Zipf workload and a hot-set stream, plus the SpaceSaving baseline.

``merge``
    The aggregator hot path of Section 7: ``m = 256`` size-``k = 1024``
    per-user sketch exports (E11-style Zipf traffic) merged into one summary.
    The vectorized key-interning fold over dict inputs
    (:func:`repro.sketches.merge.merge_many`) and over columnar wire inputs
    (:func:`repro.sketches.merge.merge_many_arrays`) are measured against the
    frozen seed dict-based left fold preserved in
    :mod:`repro.sketches._reference_merge`; all three produce exactly the
    same merged summary.

``framed_merge``
    The streaming transport of the distributed setting: the same ``m = 256``
    sketch exports shipped as one length-prefix framed stream
    (:mod:`repro.api.framing`, binary columnar frames) and folded one frame
    at a time by :class:`~repro.api.framing.StreamingMerger`, against the
    seed aggregator pipeline — per-sketch v1 JSON envelopes (token-keyed
    counter objects) decoded key by key and folded with the frozen seed dict
    left fold.  Both paths start from serialized bytes and produce the same
    merged summary.

``release``
    The DP release of a large aggregated histogram: one bulk-noise
    mask-filter pass (:func:`repro.core.merging._noisy_threshold_filter`)
    against the frozen seed per-key loop preserved in
    :mod:`repro.core._reference` — plus a registry sweep: one
    release-throughput row per registered mechanism
    (``release_<name>`` workloads, every ``list_mechanisms()`` entry, no
    floor; the cross-PR trajectory shows which mechanisms drift) — plus the
    served-release cycle (``release_served_auth``): ``m = 64`` size-``k =
    256`` exports pushed over a Unix socket and released, once on an open
    server (the baseline) and once with token auth required on every
    session.  Both cycles release bit-identically (asserted); the floor is
    auth-on >= 0.9x auth-off throughput, so requiring tokens stays in the
    noise.

``net_aggregate``
    The live aggregation service (:mod:`repro.net`): the same ``m = 256``
    sketch exports pushed over a localhost Unix socket by 4 concurrent
    clients into an :class:`~repro.net.AggregatorServer` (per-session
    ``StreamingMerger`` folds + ordinal combine + DP release) against the
    offline framed-file fold of the same chunked exports.  Both produce the
    bit-identical histogram (asserted); the ratio is the cost of moving the
    bytes through real sockets and the asyncio control protocol.

``durability``
    The cost of crash safety: the ``net_aggregate`` push workload (``m =
    256`` size-``k = 1024`` exports, 4 concurrent Unix-socket clients) run
    against a plain in-memory server and against one with the write-ahead
    log enabled (``--wal-dir``: per-session spools, fsync-per-burst commits,
    sqlite checkpoint ledger).  Both runs release bit-identically (asserted),
    and one WAL run is additionally recovered by a fresh server on the same
    wal dir to prove the durable state releases identically too.  The
    acceptance floor is WAL-on >= 0.5x WAL-off throughput; the record gains
    a ``durability`` stanza (backend, fsync, spool bytes, recovery check).

``kernels``
    The compiled kernel tier (:mod:`repro.kernels`) against the vectorized
    python engines it replaces, on the two interpreter-bound hot loops: the
    E11 Zipf stream through ``update_batch`` at the small-``k`` regime
    (``k = 64``, where per-chunk python overhead dominates the vectorized
    path) and the interned columnar merge fold
    (:func:`repro.sketches.merge._fold_interned`, the stage behind
    ``merge_many_arrays``) at ``m = 256`` / ``k = 1024``.  Both backends
    produce bit-identical results (asserted before timing), so every ratio
    is pure engine speed.  The compiled rows are skipped — and their floors
    waived — when no compiled provider (numba or a C compiler) is present.

``runner``
    An :class:`repro.analysis.ExperimentRunner` sweep executed sequentially
    and with ``workers=2`` process-level parallelism (recorded for the
    trajectory; no floor — the win depends on core count).

Each invocation appends one JSON record to ``BENCH_sketch.json`` at the repo
root so the performance trajectory is preserved across PRs.  Every record
carries a ``kernels`` stanza (resolved backend, provider availability, numba
version) so trajectory comparisons know which engine produced each row.
Run it with::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--workloads ...]

The record includes the speedup ratios the acceptance criteria track:
``all_distinct_k1024_batch`` (>= 10x), ``zipf_e11_k1024_batch`` (>= 3x),
``merge_m256_k1024_arrays`` (>= 10x),
``framed_merge_m256_k1024_streaming`` (>= 8x),
``release_trusted_sum_k1024_vectorized`` (>= 3x),
``release_served_auth_k256_auth_on`` (>= 0.9x auth-off),
``durability_m256_k1024_wal_sqlite_4clients`` (>= 0.5x WAL-off),
``kernels_update_zipf_k64_compiled_batch`` (>= 8x over the seed),
``kernels_update_zipf_k64_compiled_vs_python`` (>= 3x) and
``kernels_fold_m256_k1024_compiled_vs_python`` (>= 2x).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:  # direct invocation without PYTHONPATH
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.analysis import ExperimentRunner, SweepSpec
from repro.core._reference import reference_trusted_sum_filter
from repro.core.merging import _noisy_threshold_filter
from repro.dp.thresholds import stability_histogram_threshold
from repro.sketches import MisraGriesSketch, SpaceSavingSketch, merge_many
from repro.sketches.merge import merge_many_arrays
from repro.sketches._reference import ReferenceMisraGries
from repro.sketches._reference_merge import reference_merge_many
from repro.streams import uniform_stream, zipf_stream

BENCH_PATH = _REPO_ROOT / "BENCH_sketch.json"

#: All workload groups, in report order.
WORKLOAD_GROUPS = ("sketch", "merge", "framed_merge", "net_aggregate",
                   "durability", "relay", "release", "kernels", "runner",
                   "loadgen")

#: The E11 workload parameters (benchmarks/bench_e11_performance.py).
E11_N = 100_000
E11_UNIVERSE = 50_000
E11_EXPONENT = 1.2
E11_RNG = 50

#: The merge workload shape pinned by the ISSUE 2 acceptance criteria.
MERGE_M = 256
MERGE_K = 1024


def _elems_per_sec(ingest: Callable[[], object], n: int, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ingest()
        best = min(best, time.perf_counter() - start)
    return n / best if best > 0 else float("inf")


def _measure(workload: str, k: int, n: int, mode: str,
             ingest: Callable[[], object], repeats: int = 1) -> Dict:
    """One result row; ``repeats > 1`` takes the best of several runs (used
    for the sub-second aggregation workloads, where scheduler noise on a
    busy machine would otherwise dominate a single measurement)."""
    return {"workload": workload, "k": k, "n": n, "mode": mode,
            "elems_per_sec": round(_elems_per_sec(ingest, n, repeats), 1)}


# ---------------------------------------------------------------------------
# sketch group (the PR-1 suite)
# ---------------------------------------------------------------------------

def _run_sketch_group(rows: List[Dict], quick: bool) -> None:
    k = 1024

    # -- adversarial all-distinct stream (decrement-heavy) -------------------
    n_opt = 50_000 if quick else 200_000
    n_ref = 5_000 if quick else 20_000
    distinct_opt = np.arange(n_opt, dtype=np.int64)
    distinct_list = distinct_opt.tolist()
    rows.append(_measure("all_distinct", k, n_ref, "reference_seed",
                         lambda: ReferenceMisraGries.from_stream(k, range(n_ref))))
    rows.append(_measure("all_distinct", k, n_opt, "optimized_sequential",
                         lambda: _sequential(MisraGriesSketch(k), distinct_list)))
    rows.append(_measure("all_distinct", k, n_opt, "optimized_batch",
                         lambda: MisraGriesSketch(k).update_batch(distinct_opt)))

    # -- E11 Zipf workload ----------------------------------------------------
    zipf = zipf_stream(E11_N // 4 if quick else E11_N, E11_UNIVERSE,
                       exponent=E11_EXPONENT, rng=E11_RNG, as_array=True)
    zipf_list = zipf.tolist()
    zipf_ref = zipf_list[:n_ref]
    for size in (64, 256, 1024):
        rows.append(_measure("zipf_e11", size, len(zipf_ref), "reference_seed",
                             lambda size=size: ReferenceMisraGries.from_stream(size, zipf_ref)))
        rows.append(_measure("zipf_e11", size, len(zipf), "optimized_sequential",
                             lambda size=size: _sequential(MisraGriesSketch(size), zipf_list)))
        rows.append(_measure("zipf_e11", size, len(zipf), "optimized_batch",
                             lambda size=size: MisraGriesSketch(size).update_batch(zipf)))

    # -- hot-set stream: universe fits in the sketch, pure Branch-1 traffic ---
    # This is where the vectorized path collapses whole chunks into one bulk
    # increment per key (production-style traffic over a bounded key space).
    hot = uniform_stream(4 * n_opt, 512, rng=7, as_array=True)
    hot_list = hot.tolist()
    rows.append(_measure("hot_set", k, n_ref, "reference_seed",
                         lambda: ReferenceMisraGries.from_stream(k, hot_list[:n_ref])))
    rows.append(_measure("hot_set", k, len(hot), "optimized_sequential",
                         lambda: _sequential(MisraGriesSketch(k), hot_list)))
    rows.append(_measure("hot_set", k, len(hot), "optimized_batch",
                         lambda: MisraGriesSketch(k).update_batch(hot)))

    # -- SpaceSaving baseline (heap eviction) ---------------------------------
    rows.append(_measure("all_distinct_space_saving", k, n_opt, "optimized_heap",
                         lambda: _sequential(SpaceSavingSketch(k), distinct_list)))


# ---------------------------------------------------------------------------
# merge group (ISSUE 2: m sketches in, one summary out)
# ---------------------------------------------------------------------------

def _per_user_sketch_exports(m: int, k: int, n_per_user: int):
    """Wire-form exports of real per-user sketches under E11-style traffic.

    Each of the ``m`` users sketches its own Zipf stream (the paper's traffic
    model: the heavy hitters are shared across users, each tail is not) and
    exports ``counters()`` as a (keys, values) array pair — exactly what a
    production edge server would ship to the aggregator.
    """
    keys_list, values_list = [], []
    for user in range(m):
        stream = zipf_stream(n_per_user, E11_UNIVERSE, exponent=E11_EXPONENT,
                             rng=100 + user, as_array=True)
        counters = MisraGriesSketch.from_stream(k, stream).counters()
        keys_list.append(np.fromiter(counters.keys(), dtype=np.int64,
                                     count=len(counters)))
        values_list.append(np.fromiter(counters.values(), dtype=np.float64,
                                       count=len(counters)))
    return keys_list, values_list


def _run_merge_group(rows: List[Dict], quick: bool) -> None:
    """m sketch exports in, one merged summary out (all three agree exactly).

    The seed path must materialize per-sketch dicts before its left fold, so
    that conversion is part of its measurement; ``optimized_dicts`` pays the
    same conversion into the vectorized fold; ``optimized_arrays`` is the
    columnar wire path (:func:`repro.sketches.merge.merge_many_arrays`).
    """
    m, k = MERGE_M, MERGE_K
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=5_000 if quick else 20_000)
    pairs = int(sum(keys.size for keys in keys_list))

    def _as_dicts():
        return [dict(zip(keys.tolist(), values.tolist()))
                for keys, values in zip(keys_list, values_list)]

    rows.append(_measure(f"merge_m{m}", k, pairs, "reference_seed",
                         lambda: reference_merge_many(_as_dicts(), k), repeats=3))
    rows.append(_measure(f"merge_m{m}", k, pairs, "optimized_dicts",
                         lambda: merge_many(_as_dicts(), k), repeats=3))
    rows.append(_measure(f"merge_m{m}", k, pairs, "optimized_arrays",
                         lambda: merge_many_arrays(keys_list, values_list, k),
                         repeats=3))


# ---------------------------------------------------------------------------
# framed_merge group (ISSUE 4: streaming wire transport into the merge fold)
# ---------------------------------------------------------------------------

def _run_framed_merge_group(rows: List[Dict], quick: bool) -> None:
    """m framed sketch exports in, one merged summary out, frame by frame.

    The seed aggregator reads one v1 JSON envelope per sketch — a token-keyed
    ``{"i:123": count}`` object decoded key by key — and folds the dicts with
    the frozen seed left fold.  The streaming path reads the same exports as
    one framed stream (binary columnar frames) through ``FrameReader`` +
    ``StreamingMerger``, holding only the current frame plus the ``<= k``
    accumulator.  Both start from serialized bytes and end at the *same*
    merged summary (asserted below), so the ratio is transport + fold against
    transport + fold.
    """
    import io
    import json as json_module

    from repro.api.framing import FrameReader, FrameWriter, StreamingMerger
    from repro.api.wire import encode_counters
    from repro.sketches.serialization import _decode_key

    m, k = MERGE_M, MERGE_K
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=5_000 if quick else 20_000)
    pairs = int(sum(keys.size for keys in keys_list))
    counters_list = [dict(zip(keys.tolist(), values.tolist()))
                     for keys, values in zip(keys_list, values_list)]

    buffer = io.BytesIO()
    with FrameWriter(buffer, k=k, frames=m) as writer:
        for counters in counters_list:
            writer.write_payload(encode_counters(counters, k=k))
    framed = buffer.getvalue()

    v1_blobs = [json_module.dumps(
        {"format_version": 1, "kind": "counters", "k": k,
         "counters": {f"i:{key}": value for key, value in counters.items()}})
        for counters in counters_list]

    def _seed_fold():
        dicts = []
        for blob in v1_blobs:
            payload = json_module.loads(blob)
            dicts.append({_decode_key(token): float(value)
                          for token, value in payload["counters"].items()})
        return reference_merge_many(dicts, k)

    def _streamed_fold():
        return StreamingMerger(k).consume(FrameReader(io.BytesIO(framed))).merged()

    assert _seed_fold() == _streamed_fold()  # same summary, same key order
    rows.append(_measure(f"framed_merge_m{m}", k, pairs, "reference_seed",
                         _seed_fold, repeats=3))
    rows.append(_measure(f"framed_merge_m{m}", k, pairs, "optimized_streaming",
                         _streamed_fold, repeats=3))


# ---------------------------------------------------------------------------
# net_aggregate group (ISSUE 5: the live socket service vs the offline fold)
# ---------------------------------------------------------------------------

def _run_net_aggregate_group(rows: List[Dict], quick: bool) -> None:
    """m sketch exports over a localhost socket vs the offline framed fold.

    The same chunked exports (4 framed chunks, one per client), the same
    two-level fold (per-chunk ``StreamingMerger`` + ordinal combine), the
    same seeded release — once folded straight off in-memory framed bytes,
    once pushed through the full asyncio service (Unix socket, framed
    control protocol, per-session folds, RELEASE round-trip).  The two
    histograms are asserted bit-identical, so the ratio isolates transport
    and protocol cost; the acceptance floor is >= 0.5x offline throughput.
    """
    import asyncio
    import io
    import tempfile

    from repro.api.framing import (
        FrameReader,
        FrameWriter,
        StreamingMerger,
        combine_mergers,
    )
    from repro.api.wire import encode_counters
    from repro.core.merging import PrivateMergedRelease
    from repro.net import AggregatorClient, AggregatorServer

    m, k, clients = MERGE_M, MERGE_K, 4
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=5_000 if quick else 20_000)
    pairs = int(sum(keys.size for keys in keys_list))
    chunk_bytes = []
    for indices in np.array_split(np.arange(m), clients):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(indices)) as writer:
            for index in indices:
                writer.write_payload(encode_counters(
                    dict(zip(keys_list[index].tolist(),
                             values_list[index].tolist())), k=k))
        chunk_bytes.append(buffer.getvalue())

    def _offline():
        parts = [StreamingMerger(k).consume(FrameReader(io.BytesIO(blob)))
                 for blob in chunk_bytes]
        mechanism = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k)
        return combine_mergers(parts, k).release(mechanism, rng=7)

    async def _over_socket():
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            server = AggregatorServer(epsilon=1.0, delta=1e-6, k=k)
            async with await server.start(f"unix:{sockdir}/agg.sock"):

                async def push(ordinal: int, blob: bytes) -> None:
                    async with AggregatorClient(server.address, k=k,
                                                ordinal=ordinal) as client:
                        await client.push_raw(
                            list(FrameReader(io.BytesIO(blob), raw=True)))

                await asyncio.gather(*[push(ordinal, blob) for ordinal, blob
                                       in enumerate(chunk_bytes)])
                async with AggregatorClient(server.address) as client:
                    return await client.request_release(seed=7)

    def _networked():
        return asyncio.run(_over_socket())

    offline, networked = _offline(), _networked()
    assert list(offline.as_dict().items()) == list(networked.as_dict().items())
    rows.append(_measure(f"net_aggregate_m{m}", k, pairs, "reference_seed",
                         _offline, repeats=3))
    rows.append(_measure(f"net_aggregate_m{m}", k, pairs,
                         f"optimized_socket_{clients}clients", _networked,
                         repeats=3))


# ---------------------------------------------------------------------------
# durability group (ISSUE 7: the WAL-backed service vs the in-memory service)
# ---------------------------------------------------------------------------

def _run_durability_group(rows: List[Dict], quick: bool) -> Optional[Dict]:
    """The push workload with and without the write-ahead log.

    Same exports, same 4-client Unix-socket push cycle, same seeded release
    — once on a plain in-memory server (the ``reference_seed`` mode here:
    durability off is the baseline the floor is measured against), once with
    ``wal_dir`` set, so every accepted frame is spooled verbatim and every
    burst is fsync-committed to the sqlite ledger before its ACK.  The two
    releases are asserted bit-identical, and a fresh server recovering the
    WAL run's directory must release identically again — the throughput
    ratio is therefore the pure price of crash safety (floor: >= 0.5x).
    Returns the record's ``durability`` stanza.
    """
    import asyncio
    import io
    import tempfile
    from pathlib import Path as _Path

    from repro.api.framing import FrameReader, FrameWriter
    from repro.api.wire import encode_counters
    from repro.net import AggregatorClient, AggregatorServer

    m, k, clients = MERGE_M, MERGE_K, 4
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=5_000 if quick else 20_000)
    pairs = int(sum(keys.size for keys in keys_list))
    chunks = []
    for indices in np.array_split(np.arange(m), clients):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(indices)) as writer:
            for index in indices:
                writer.write_payload(encode_counters(
                    dict(zip(keys_list[index].tolist(),
                             values_list[index].tolist())), k=k))
        buffer.seek(0)
        chunks.append(list(FrameReader(buffer, raw=True)))

    async def _push_cycle(wal_dir):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            server = AggregatorServer(epsilon=1.0, delta=1e-6, k=k,
                                      wal_dir=wal_dir)
            async with await server.start(f"unix:{sockdir}/agg.sock"):

                async def push(ordinal: int, bodies) -> None:
                    async with AggregatorClient(server.address, k=k,
                                                ordinal=ordinal) as client:
                        await client.push_raw(bodies)

                await asyncio.gather(*[push(ordinal, bodies) for ordinal,
                                       bodies in enumerate(chunks)])
                async with AggregatorClient(server.address) as client:
                    return await client.request_release(seed=7)

    async def _recovered_release(wal_dir):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            server = AggregatorServer(epsilon=1.0, delta=1e-6, k=k,
                                      wal_dir=wal_dir)
            async with await server.start(f"unix:{sockdir}/agg.sock"):
                async with AggregatorClient(server.address) as client:
                    return await client.request_release(seed=7)

    def _wal_off():
        return asyncio.run(_push_cycle(None))

    def _wal_on():
        with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as wal:
            return asyncio.run(_push_cycle(wal))

    # Identity + recovery sanity before any clock starts.
    baseline = _wal_off()
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as wal:
        durable = asyncio.run(_push_cycle(wal))
        recovered = asyncio.run(_recovered_release(wal))
        wal_bytes = sum(path.stat().st_size
                        for path in _Path(wal).glob("*.spool"))
    assert list(baseline.as_dict().items()) == list(durable.as_dict().items())
    recovery_identical = (
        list(durable.as_dict().items()) == list(recovered.as_dict().items())
        and durable.metadata.as_dict() == recovered.metadata.as_dict())
    assert recovery_identical

    rows.append(_measure(f"durability_m{m}", k, pairs, "reference_seed",
                         _wal_off, repeats=3))
    rows.append(_measure(f"durability_m{m}", k, pairs,
                         f"optimized_wal_sqlite_{clients}clients", _wal_on,
                         repeats=3))
    return {"durability": {
        "store_backend": "sqlite",
        "fsync": True,
        "clients": clients,
        "frames": m,
        "spool_bytes": int(wal_bytes),
        "recovered_release_identical": recovery_identical,
    }}


# ---------------------------------------------------------------------------
# relay group (ISSUE 8: aggregator-of-aggregators scale-out)
# ---------------------------------------------------------------------------

def _run_relay_group(rows: List[Dict], quick: bool) -> None:
    """A 2-leaves x 4-clients relay tree vs one flat 8-client server.

    The same 8 chunked per-user exports, the same seeded release — once
    pushed straight at a flat aggregation server by 8 clients
    (``reference_seed``: the single-tier service is the baseline the floor
    is measured against), once through two relay leaves that each fold 4
    client sessions and forward per-origin-session summary frames to the
    root on release.  The two histograms are asserted bit-identical before
    any clock starts, so the ratio isolates the cost of the extra hop
    (summary re-encode, leaf-to-root push, proxied RELEASE); the acceptance
    floor is >= 0.7x flat throughput.
    """
    import asyncio
    import io
    import tempfile

    from repro.api.framing import FrameReader, FrameWriter
    from repro.api.wire import encode_counters
    from repro.net import AggregatorClient, AggregatorServer
    from repro.net.relay import RelayAggregatorServer

    m, k, clients, leaves = MERGE_M, MERGE_K, 8, 2
    per_leaf = clients // leaves
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=5_000 if quick else 20_000)
    pairs = int(sum(keys.size for keys in keys_list))
    chunks = []
    for indices in np.array_split(np.arange(m), clients):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(indices)) as writer:
            for index in indices:
                writer.write_payload(encode_counters(
                    dict(zip(keys_list[index].tolist(),
                             values_list[index].tolist())), k=k))
        buffer.seek(0)
        chunks.append(list(FrameReader(buffer, raw=True)))

    async def _push(address: str, ordinal: int, bodies) -> None:
        async with AggregatorClient(address, k=k, ordinal=ordinal) as client:
            await client.push_raw(bodies)

    async def _flat_cycle():
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            server = AggregatorServer(epsilon=1.0, delta=1e-6, k=k)
            async with await server.start(f"unix:{sockdir}/flat.sock"):
                await asyncio.gather(*[
                    _push(server.address, ordinal, bodies)
                    for ordinal, bodies in enumerate(chunks)])
                async with AggregatorClient(server.address) as client:
                    return await client.request_release(seed=7)

    async def _relay_cycle():
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            root = AggregatorServer(epsilon=1.0, delta=1e-6, k=k,
                                    accept_relays=True)
            async with await root.start(f"unix:{sockdir}/root.sock"):
                relays = [RelayAggregatorServer(
                    epsilon=1.0, delta=1e-6, k=k, upstream=root.address,
                    relay_ordinal=leaf) for leaf in range(leaves)]
                started = [await relay.start(f"unix:{sockdir}/leaf{leaf}.sock")
                           for leaf, relay in enumerate(relays)]
                try:
                    # Leaf-major client placement: global ordinal order over
                    # the tree matches the flat server's release order, so
                    # the releases are bit-identical.
                    await asyncio.gather(*[
                        _push(relays[ordinal // per_leaf].address, ordinal,
                              bodies)
                        for ordinal, bodies in enumerate(chunks)])
                    for relay in relays[:-1]:
                        await relay.forward_flush()
                    async with AggregatorClient(relays[-1].address) as client:
                        return await client.request_release(seed=7)
                finally:
                    for relay in started:
                        await relay.aclose()

    def _flat():
        return asyncio.run(_flat_cycle())

    def _relayed():
        return asyncio.run(_relay_cycle())

    flat, relayed = _flat(), _relayed()
    assert list(flat.as_dict().items()) == list(relayed.as_dict().items())
    assert flat.metadata.as_dict() == relayed.metadata.as_dict()
    rows.append(_measure(f"relay_m{m}", k, pairs, "reference_seed",
                         _flat, repeats=3))
    rows.append(_measure(f"relay_m{m}", k, pairs,
                         f"optimized_relay_{leaves}x{per_leaf}", _relayed,
                         repeats=3))


# ---------------------------------------------------------------------------
# release group (bulk noise + threshold filter over a large aggregate)
# ---------------------------------------------------------------------------

def _run_release_group(rows: List[Dict], quick: bool) -> None:
    keys = 20_000 if quick else 100_000
    generator = np.random.default_rng(77)
    aggregate = dict(zip(range(keys),
                         generator.integers(1, 500, size=keys).astype(np.float64).tolist()))
    epsilon, delta = 1.0, 1e-6
    scale = 2.0 / epsilon
    threshold = stability_histogram_threshold(epsilon, delta, sensitivity=2.0)
    rows.append(_measure("release_trusted_sum", MERGE_K, keys, "reference_seed",
                         lambda: reference_trusted_sum_filter(
                             aggregate, scale, threshold, np.random.default_rng(3)),
                         repeats=3))
    rows.append(_measure("release_trusted_sum", MERGE_K, keys, "optimized_vectorized",
                         lambda: _noisy_threshold_filter(
                             aggregate, scale, threshold, np.random.default_rng(3)),
                         repeats=3))
    _run_registry_release_sweep(rows, quick)


def _run_registry_release_sweep(rows: List[Dict], quick: bool) -> None:
    """One release-throughput row per registered mechanism.

    Every ``list_mechanisms()`` entry — the paper's releases and all
    baselines — is constructed from one shared parameter grab-bag, fitted
    with input matching its ``consumes`` tag, and timed over its private
    release.  New mechanisms join the sweep automatically when registered;
    the rows carry no floor (mechanisms differ by orders of magnitude by
    design) but extend the cross-PR trajectory per mechanism.
    """
    from repro.api import Pipeline, list_mechanisms, mechanism_entry

    n = 2_000 if quick else 5_000
    universe, k = 512, 256
    stream = zipf_stream(n, universe, exponent=1.2, rng=11, as_array=True)
    stream_list = stream.tolist()
    users = [frozenset(stream_list[index:index + 4])
             for index in range(0, n, 4)]
    params = dict(epsilon=1.0, delta=1e-6, k=k, universe_size=universe,
                  max_contribution=4, phi=0.01, block_size=max(1, n // 4))
    for name in sorted(list_mechanisms()):
        consumes = mechanism_entry(name).consumes
        pipeline = Pipeline(mechanism=name, **params)
        if consumes == "user_stream":
            pipeline.fit(users)
            units = len(users)
        elif consumes in ("stream", "checkpointed_stream"):
            pipeline.fit(stream_list)
            units = n
        else:  # sketch / sketch_list mechanisms ride the batch fit
            pipeline.fit(stream)
            units = n
        rows.append(_measure(f"release_{name}", k, units, "registry_release",
                             lambda pipeline=pipeline: pipeline.release(
                                 rng=np.random.default_rng(0)),
                             repeats=3))
    _run_auth_release_bench(rows, quick)


def _run_auth_release_bench(rows: List[Dict], quick: bool) -> None:
    """The served-release cycle with and without token auth.

    Same exports, same Unix-socket push + RELEASE round-trip — once on an
    open server (the ``reference_seed`` baseline here: auth off), once with
    ``auth_token`` required and every client presenting it.  The released
    histograms are asserted bit-identical, so the ratio is the pure price
    of the HELLO token check (one ``hmac.compare_digest`` per session); the
    acceptance floor is auth-on >= 0.9x auth-off throughput.
    """
    import asyncio
    import io
    import tempfile

    from repro.api.framing import FrameReader, FrameWriter
    from repro.api.wire import encode_counters
    from repro.net import AggregatorClient, AggregatorServer

    m, k, clients, token = 64, 256, 4, "bench-token"
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=2_000 if quick else 5_000)
    pairs = int(sum(keys.size for keys in keys_list))
    chunk_bytes = []
    for indices in np.array_split(np.arange(m), clients):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(indices)) as writer:
            for index in indices:
                writer.write_payload(encode_counters(
                    dict(zip(keys_list[index].tolist(),
                             values_list[index].tolist())), k=k))
        chunk_bytes.append(buffer.getvalue())

    async def _serve_cycle(auth: bool):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            server = AggregatorServer(epsilon=1.0, delta=1e-6, k=k,
                                      auth_token=token if auth else None)
            client_token = token if auth else None
            async with await server.start(f"unix:{sockdir}/agg.sock"):

                async def push(ordinal: int, blob: bytes) -> None:
                    async with AggregatorClient(
                            server.address, k=k, ordinal=ordinal,
                            auth_token=client_token) as client:
                        await client.push_raw(
                            list(FrameReader(io.BytesIO(blob), raw=True)))

                await asyncio.gather(*[push(ordinal, blob) for ordinal, blob
                                       in enumerate(chunk_bytes)])
                async with AggregatorClient(server.address,
                                            auth_token=client_token) as client:
                    return await client.request_release(seed=7)

    def _open_cycle():
        return asyncio.run(_serve_cycle(False))

    def _auth_cycle():
        return asyncio.run(_serve_cycle(True))

    open_release, auth_release = _open_cycle(), _auth_cycle()
    assert (list(open_release.as_dict().items())
            == list(auth_release.as_dict().items()))
    # Best-of-5: the whole cycle (server startup, 5 sessions, release) runs
    # in milliseconds, so scheduler noise straddles the 0.9x floor at lower
    # repeat counts even though the token check itself is nanoseconds.
    rows.append(_measure("release_served_auth", k, pairs, "reference_seed",
                         _open_cycle, repeats=5))
    rows.append(_measure("release_served_auth", k, pairs, "optimized_auth_on",
                         _auth_cycle, repeats=5))


# ---------------------------------------------------------------------------
# kernels group (ISSUE 6: the compiled tier against the python engines)
# ---------------------------------------------------------------------------

def _kernel_tier_info() -> Dict:
    """The ``kernels`` stanza recorded with every run: which backend the hot
    paths resolved to, which providers were available, and the numba version
    (``None`` when numba is absent and the C provider — or pure python — is
    serving)."""
    from repro import kernels as kernel_tier

    info = kernel_tier.kernel_info()
    return {
        "available": kernel_tier.available(),
        "backend": info["backend"],
        "numba": info["numba_version"],
        "providers": {name: provider["available"]
                      for name, provider in info["providers"].items()},
    }


def _run_kernels_group(rows: List[Dict], quick: bool) -> None:
    """The compiled kernel tier against the vectorized python engines.

    Both backends are bit-identical (same counters, same float bits, same
    dict order — asserted here before any clock starts), so the ratios are
    pure engine speed.  Update rows run the E11 Zipf stream at ``k = 64``:
    the small-``k`` regime is where the vectorized python path is weakest
    (its per-chunk overhead is amortized over fewer stored keys) and where
    the seed's per-element dict loop was slowest, hence the >= 8x-over-seed
    floor.  Fold rows time the post-interning fold stage
    (:func:`repro.sketches.merge._fold_interned`) on columnar input — the
    stage the compiled kernel replaces — with the shared ``np.unique``
    interning kept out of both measurements.
    """
    from repro import kernels as kernel_tier
    from repro.sketches import merge as merge_module

    compiled = kernel_tier.available()

    # -- update_batch on the E11 Zipf stream at small k ----------------------
    k = 64
    n_ref = 5_000 if quick else 20_000
    zipf = zipf_stream(E11_N // 4 if quick else E11_N, E11_UNIVERSE,
                       exponent=E11_EXPONENT, rng=E11_RNG, as_array=True)
    zipf_ref = zipf.tolist()[:n_ref]
    rows.append(_measure("kernels_update_zipf", k, n_ref, "reference_seed",
                         lambda: ReferenceMisraGries.from_stream(k, zipf_ref)))
    rows.append(_measure("kernels_update_zipf", k, len(zipf),
                         "optimized_python_batch",
                         lambda: MisraGriesSketch(k, backend="python")
                         .update_batch(zipf), repeats=3))
    if compiled:
        expected = MisraGriesSketch(k, backend="python").update_batch(zipf)
        got = MisraGriesSketch(k, backend="compiled").update_batch(zipf)
        assert got.counters() == expected.counters()
        assert list(got.counters()) == list(expected.counters())
        rows.append(_measure("kernels_update_zipf", k, len(zipf),
                             "optimized_compiled_batch",
                             lambda: MisraGriesSketch(k, backend="compiled")
                             .update_batch(zipf), repeats=3))

    # -- the interned fold behind merge_many_arrays at m=256, k=1024 ---------
    m, size = MERGE_M, MERGE_K
    keys_list, values_list = _per_user_sketch_exports(
        m, size, n_per_user=5_000 if quick else 20_000)
    flat_keys = np.concatenate(keys_list)
    flat_values = np.concatenate(values_list).astype(np.float64)
    lengths = [keys.size for keys in keys_list]
    domain_keys, flat_ids = np.unique(flat_keys, return_inverse=True)
    domain = int(domain_keys.size)
    pairs = int(flat_keys.size)

    def _fold(backend):
        return merge_module._fold_interned(flat_ids, flat_values, lengths,
                                           domain, size, backend=backend)

    rows.append(_measure(f"kernels_fold_m{m}", size, pairs,
                         "optimized_python_fold",
                         lambda: _fold("python"), repeats=3))
    if compiled:
        py_active, py_acc = _fold("python")
        cc_active, cc_acc = _fold("compiled")
        assert np.array_equal(py_active, cc_active)
        assert np.array_equal(py_acc[py_active], cc_acc[cc_active])
        rows.append(_measure(f"kernels_fold_m{m}", size, pairs,
                             "optimized_compiled_fold",
                             lambda: _fold("compiled"), repeats=3))


# ---------------------------------------------------------------------------
# runner group (process-parallel sweep execution)
# ---------------------------------------------------------------------------

def _runner_trial(rng, k, exponent):
    """Sketch a Zipf stream and report the stored-key count (picklable)."""
    stream = zipf_stream(20_000, 5_000, exponent=exponent, rng=rng, as_array=True)
    sketch = MisraGriesSketch.from_stream(k, stream)
    return {"stored": float(len(sketch.counters()))}


def _run_runner_group(rows: List[Dict], quick: bool) -> None:
    repetitions = 2 if quick else 3
    sweep = SweepSpec({"k": [64, 256], "exponent": [1.1, 1.3]})
    trials = len(sweep.combinations()) * repetitions
    rows.append(_measure("runner_sweep", 0, trials, "optimized_sequential",
                         lambda: ExperimentRunner(repetitions=repetitions, rng=5)
                         .run(_runner_trial, sweep)))
    rows.append(_measure("runner_sweep", 0, trials, "optimized_workers2",
                         lambda: ExperimentRunner(repetitions=repetitions, rng=5, workers=2)
                         .run(_runner_trial, sweep)))


# ---------------------------------------------------------------------------
# loadgen group (ISSUE 10: the load harness + the obs-overhead floor)
# ---------------------------------------------------------------------------

def _run_obs_overhead_bench(rows: List[Dict], quick: bool) -> None:
    """The served-release cycle with observability on vs off.

    Same exports, same Unix-socket push + RELEASE round-trip — once with
    ``metrics=False`` (the ``reference_seed`` baseline: obs off), once with
    ``metrics=True`` and a JSON trace stream attached.  The released
    histograms are asserted bit-identical (obs is read-side only), so the
    ratio is the pure price of the counters/histograms/spans; the
    acceptance floor is obs-on >= 0.9x obs-off throughput.
    """
    import asyncio
    import io
    import tempfile

    from repro.api.framing import FrameReader, FrameWriter
    from repro.api.wire import encode_counters
    from repro.net import AggregatorClient, AggregatorServer

    m, k, clients = 64, 256, 4
    keys_list, values_list = _per_user_sketch_exports(
        m, k, n_per_user=2_000 if quick else 5_000)
    pairs = int(sum(keys.size for keys in keys_list))
    chunk_bytes = []
    for indices in np.array_split(np.arange(m), clients):
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=len(indices)) as writer:
            for index in indices:
                writer.write_payload(encode_counters(
                    dict(zip(keys_list[index].tolist(),
                             values_list[index].tolist())), k=k))
        chunk_bytes.append(buffer.getvalue())

    async def _serve_cycle(obs: bool):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sockdir:
            log = io.StringIO() if obs else None
            server = AggregatorServer(epsilon=1.0, delta=1e-6, k=k,
                                      metrics=obs, log_json=log)
            async with await server.start(f"unix:{sockdir}/agg.sock"):

                async def push(ordinal: int, blob: bytes) -> None:
                    async with AggregatorClient(
                            server.address, k=k, ordinal=ordinal,
                            metrics=obs) as client:
                        await client.push_raw(
                            list(FrameReader(io.BytesIO(blob), raw=True)))

                await asyncio.gather(*[push(ordinal, blob) for ordinal, blob
                                       in enumerate(chunk_bytes)])
                async with AggregatorClient(server.address) as client:
                    return await client.request_release(seed=7)

    def _off_cycle():
        return asyncio.run(_serve_cycle(False))

    def _on_cycle():
        return asyncio.run(_serve_cycle(True))

    off_release, on_release = _off_cycle(), _on_cycle()
    assert (list(off_release.as_dict().items())
            == list(on_release.as_dict().items()))
    assert off_release.metadata.as_dict() == on_release.metadata.as_dict()
    # Best-of-5 for the same reason as the auth bench: the whole cycle is
    # milliseconds, and scheduler noise would straddle the 0.9x floor.
    rows.append(_measure("obs_serve", k, pairs, "reference_seed",
                         _off_cycle, repeats=5))
    rows.append(_measure("obs_serve", k, pairs, "optimized_obs_on",
                         _on_cycle, repeats=5))


def _run_loadgen_group(rows: List[Dict], quick: bool) -> Optional[Dict]:
    """The ``repro loadgen`` harness as a benchmark workload.

    ``reference_seed`` is the closed loop at concurrency 1 (one client at a
    time, the degenerate harness); ``optimized_concurrent`` is the same
    population driven at the default bounded concurrency.  ``n`` is the
    client count, so ``elems_per_sec`` reads as *sessions per second* and
    the speedup is the concurrency win of the harness itself.  The returned
    ``loadgen`` stanza records the sustained quick-profile numbers (frames/s
    plus client-side latency percentiles) alongside the rows.
    """
    from repro.obs.loadgen import LoadgenConfig, run_loadgen

    k = 64
    ref_clients = 60 if quick else 150
    conc_clients = 400 if quick else 2_000

    def _config(clients: int, concurrency: int) -> LoadgenConfig:
        return LoadgenConfig(clients=clients, concurrency=concurrency,
                             stream_length=50, universe=1_000, k=k, seed=17,
                             releases=1, payload_pool=16, timeout=60.0)

    rows.append(_measure("loadgen_flat", k, ref_clients, "reference_seed",
                         lambda: run_loadgen(_config(ref_clients, 1))))
    report = run_loadgen(_config(conc_clients, 32))
    assert report.clients_failed == 0, report.errors
    start = time.perf_counter()
    report = run_loadgen(_config(conc_clients, 32))
    elapsed = time.perf_counter() - start
    rows.append({"workload": "loadgen_flat", "k": k, "n": conc_clients,
                 "mode": "optimized_concurrent",
                 "elems_per_sec": round(conc_clients / elapsed, 1)})
    _run_obs_overhead_bench(rows, quick)
    return {"loadgen": {
        "clients": conc_clients,
        "concurrency": 32,
        "sustained_clients_per_sec": round(report.sustained_clients_per_sec, 1),
        "sustained_frames_per_sec": round(report.sustained_frames_per_sec, 1),
        "latencies": report.latencies,
    }}


_GROUP_RUNNERS = {
    "sketch": _run_sketch_group,
    "merge": _run_merge_group,
    "framed_merge": _run_framed_merge_group,
    "net_aggregate": _run_net_aggregate_group,
    "durability": _run_durability_group,
    "relay": _run_relay_group,
    "release": _run_release_group,
    "kernels": _run_kernels_group,
    "runner": _run_runner_group,
    "loadgen": _run_loadgen_group,
}


def run_suite(quick: bool = False,
              workloads: Optional[Iterable[str]] = None) -> Dict:
    """Run the selected workload groups once and return the JSON-ready record."""
    selected = list(WORKLOAD_GROUPS) if workloads is None else list(workloads)
    unknown = [name for name in selected if name not in _GROUP_RUNNERS]
    if unknown:
        raise ValueError(f"unknown workload group(s) {unknown}; "
                         f"choose from {WORKLOAD_GROUPS}")
    rows: List[Dict] = []
    stanzas: Dict[str, Dict] = {}
    for name in WORKLOAD_GROUPS:
        if name in selected:
            extra = _GROUP_RUNNERS[name](rows, quick)
            if extra:
                # Group runners may return extra record stanzas (e.g. the
                # durability group's WAL/recovery summary).
                stanzas.update(extra)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "quick": quick,
        "workloads": [name for name in WORKLOAD_GROUPS if name in selected],
        "kernels": _kernel_tier_info(),
        **stanzas,
        "results": rows,
        "speedups": _speedups(rows),
    }
    return record


def _sequential(sketch, elements: List[int]):
    update = sketch.update
    for element in elements:
        update(element)
    return sketch


def _speedups(rows: List[Dict]) -> Dict[str, float]:
    """Optimized-vs-reference throughput ratios per workload/k, plus
    compiled-vs-python ratios wherever a workload measured the same mode
    under both backends (``optimized_python_<x>`` / ``optimized_compiled_<x>``
    row pairs from the ``kernels`` group)."""
    by_key: Dict = {}
    for row in rows:
        by_key[(row["workload"], row["k"], row["mode"])] = row["elems_per_sec"]
    speedups: Dict[str, float] = {}
    for (workload, k, mode), rate in sorted(by_key.items()):
        if mode == "reference_seed":
            continue
        reference = by_key.get((workload, k, "reference_seed"))
        if reference:
            speedups[f"{workload}_k{k}_{mode.replace('optimized_', '')}"] = round(
                rate / reference, 2)
        if mode.startswith("optimized_compiled_"):
            python_rate = by_key.get((workload, k, mode.replace(
                "optimized_compiled_", "optimized_python_")))
            if python_rate:
                speedups[f"{workload}_k{k}_compiled_vs_python"] = round(
                    rate / python_rate, 2)
    return speedups


def append_record(record: Dict, path: Path = BENCH_PATH) -> Path:
    """Append ``record`` to the JSON history file (a list of run records).

    An unreadable history file (e.g. truncated by an interrupted write) is
    moved aside to ``<name>.corrupt`` rather than silently overwritten, so
    the cross-PR trajectory is never destroyed by one bad run.
    """
    history: List[Dict] = []
    if path.exists():
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            backup = path.with_name(path.name + ".corrupt")
            path.replace(backup)
            print(f"warning: {path} was unreadable; moved it to {backup} "
                  "and started a fresh history", file=sys.stderr)
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return path


def format_record(record: Dict) -> str:
    lines = [f"sketch perf suite @ {record['timestamp']} "
             f"(python {record['python']}, quick={record['quick']}, "
             f"workloads={','.join(record.get('workloads', []))})"]
    for row in record["results"]:
        lines.append(f"  {row['workload']:>28s}  k={row['k']:<5d} "
                     f"{row['mode']:<21s} {row['elems_per_sec']:>14,.0f} elem/s")
    lines.append("  speedups vs seed engine:")
    for name, ratio in record["speedups"].items():
        lines.append(f"    {name:<42s} {ratio:>8.1f}x")
    return "\n".join(lines)
