"""Experiment E13 — the frequency-oracle route and an ablation of Algorithm 2.

Part (a): the Section 4 discussion made measurable.  Heavy hitters recovered
through a private frequency oracle — either by iterating the whole universe
(CountMin oracle) or by descending a prefix tree — are compared with the
direct private Misra-Gries release on error, released-set quality and the
number of oracle probes.  The oracle routes must split their budget across
hash rows / tree levels, which costs accuracy exactly as the paper argues.

Part (b): ablation of the two-layer noise in Algorithm 2.  Dropping the shared
Laplace draw (keeping only per-counter noise and the same threshold) leaves a
mechanism that a Monte-Carlo audit catches violating its claimed epsilon on
the decrement-all worst case, while the full mechanism passes.  This isolates
*why* the second noise layer is there: it hides the "all counters shift by
one" direction that per-counter noise alone cannot.
"""

import pytest

from repro.analysis import audit_mechanism, format_table, heavy_hitter_scores
from repro.baselines import PrefixTreeHeavyHitters, PrivateFrequencyOracle
from repro.core import PrivateMisraGries, true_heavy_hitters
from repro.core.heavy_hitters import heavy_hitters_from_histogram
from repro.core.results import PrivateHistogram, ReleaseMetadata
from repro.dp.distributions import sample_laplace
from repro.dp.rng import ensure_rng
from repro.dp.thresholds import pmg_threshold
from repro.sketches import MisraGriesSketch
from repro.streams import zipf_stream

from _common import print_experiment, run_once

N = 40_000
UNIVERSE = 4_096
K = 256
EPSILON, DELTA = 1.0, 1e-6
PHI = 0.01


def _oracle_rows() -> list:
    stream = zipf_stream(N, UNIVERSE, exponent=1.3, rng=70)
    truth = true_heavy_hitters(stream, PHI)
    rows = []

    pmg = PrivateMisraGries(epsilon=EPSILON, delta=DELTA)
    histogram = pmg.run(stream, K, rng=71)
    predicted = heavy_hitters_from_histogram(histogram, PHI, stream_length=N,
                                             slack=pmg.error_bound_vs_truth(K, N))
    scores = heavy_hitter_scores(predicted, truth)
    rows.append({"mechanism": "PMG (direct)", "probes": K,
                 "per-count noise scale": pmg.noise_scale,
                 "precision": scores["precision"], "recall": scores["recall"],
                 "f1": scores["f1"]})

    oracle = PrivateFrequencyOracle(epsilon=EPSILON, delta=DELTA, width=1_024, depth=4)
    histogram = oracle.heavy_hitters(stream, universe=range(UNIVERSE), phi=PHI, rng=72)
    scores = heavy_hitter_scores(histogram.keys(), truth)
    rows.append({"mechanism": "CountMin oracle + universe scan", "probes": UNIVERSE,
                 "per-count noise scale": oracle.noise_scale,
                 "precision": scores["precision"], "recall": scores["recall"],
                 "f1": scores["f1"]})

    tree = PrefixTreeHeavyHitters(epsilon=EPSILON, delta=DELTA, universe_size=UNIVERSE,
                                  width=1_024, depth=4)
    histogram = tree.heavy_hitters(stream, phi=PHI, rng=73)
    visited = int(histogram.metadata.notes.split("nodes visited=")[1])
    scores = heavy_hitter_scores(histogram.keys(), truth)
    rows.append({"mechanism": "prefix-tree oracle", "probes": visited,
                 "per-count noise scale": tree.per_level_noise_scale,
                 "precision": scores["precision"], "recall": scores["recall"],
                 "f1": scores["f1"]})
    return rows


def _per_counter_only_release(stream, k, epsilon, delta, rng):
    """Ablated Algorithm 2: per-counter Laplace noise only, no shared draw.

    Implemented locally so the unsafe variant is not part of the library API.
    """
    generator = ensure_rng(rng)
    sketch = MisraGriesSketch.from_stream(k, stream)
    threshold = pmg_threshold(epsilon, delta)
    counts = {}
    for key, value in sketch.raw_counters().items():
        noisy = value + float(sample_laplace(1.0 / epsilon, rng=generator))
        if noisy >= threshold and not key.__class__.__name__ == "DummyKey":
            counts[key] = noisy
    metadata = ReleaseMetadata(mechanism="PMG-ablated", epsilon=epsilon, delta=delta,
                               noise_scale=1.0 / epsilon, threshold=threshold,
                               sketch_size=k, stream_length=sketch.stream_length,
                               notes="per-counter noise only (no shared layer)")
    return PrivateHistogram(counts=counts, metadata=metadata)


def _ablation_rows() -> list:
    k = 8
    base = [f"e{i}" for i in range(k)] * 30
    stream, neighbour = base + ["trigger"], base
    rows = []
    pmg = PrivateMisraGries(epsilon=1.0, delta=1e-3)
    result = audit_mechanism(lambda data, rng: pmg.run(data, k=k, rng=rng),
                             stream, neighbour, claimed_epsilon=1.0, claimed_delta=1e-3,
                             trials=2_000, rng=74)
    rows.append({"variant": "full PMG (two noise layers)", **result.as_dict()})
    result = audit_mechanism(
        lambda data, rng: _per_counter_only_release(data, k, 1.0, 1e-3, rng),
        stream, neighbour, claimed_epsilon=1.0, claimed_delta=1e-3,
        trials=2_000, rng=75)
    rows.append({"variant": "ablated (per-counter noise only)", **result.as_dict()})
    return rows


@pytest.mark.experiment("E13")
def test_e13_oracle_routes(benchmark):
    rows = run_once(benchmark, _oracle_rows)
    by_name = {row["mechanism"]: row for row in rows}
    direct = by_name["PMG (direct)"]
    universe_scan = by_name["CountMin oracle + universe scan"]
    prefix = by_name["prefix-tree oracle"]
    # The direct route finds everything with the smallest per-count noise and
    # touches only its k counters; the oracle routes pay a noise scale growing
    # with the hash depth (and, for the prefix tree, with log d) and need many
    # more probes — the universe scan touches every one of the d elements.
    assert direct["recall"] >= 0.9
    assert direct["per-count noise scale"] < universe_scan["per-count noise scale"]
    assert universe_scan["per-count noise scale"] < prefix["per-count noise scale"]
    assert prefix["probes"] < universe_scan["probes"]
    assert direct["probes"] == K
    print_experiment("E13a", "Heavy hitters: direct PMG vs frequency-oracle routes",
                     format_table(rows))


@pytest.mark.experiment("E13")
def test_e13_noise_structure_ablation(benchmark):
    rows = run_once(benchmark, _ablation_rows)
    by_variant = {row["variant"]: row for row in rows}
    assert not by_variant["full PMG (two noise layers)"]["violated"]
    assert by_variant["ablated (per-counter noise only)"]["violated"]
    print_experiment("E13b", "Ablation: removing the shared noise layer breaks privacy",
                     format_table(rows, columns=["variant", "claimed_epsilon",
                                                 "estimated_epsilon_lower_bound",
                                                 "violated", "worst_event", "trials"]))
