"""Experiment E7 — Lemmas 25, 26, 27: user-level sensitivity of MG vs PAMG.

Three observations on the same user-level workloads:

* Lemma 25: on the adversarial instance, a single Misra-Gries counter differs
  by exactly m between neighbouring streams (so MG noise must scale with m);
* Lemma 27: the PAMG sketch's counters differ by at most 1 on the same
  instance and on random user streams;
* Lemma 26: PAMG's estimation error stays within N/(k+1).
"""

import pytest

from repro.analysis import format_table
from repro.core import PrivacyAwareMisraGries
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import distinct_user_stream, lemma25_streams
from repro.streams.user_streams import flatten_user_stream, user_stream_total_length

from _common import print_experiment, run_once

K = 16
M_VALUES = [1, 2, 4, 8, 16]


def _gap_rows() -> list:
    rows = []
    for m in M_VALUES:
        stream, neighbour = lemma25_streams(K, m, tail_length=20)
        mg = MisraGriesSketch.from_stream(K, flatten_user_stream(stream))
        mg_neighbour = MisraGriesSketch.from_stream(K, flatten_user_stream(neighbour))
        mg_gap = max(abs(mg.estimate(key) - mg_neighbour.estimate(key))
                     for key in set(mg.counters()) | set(mg_neighbour.counters()))
        pamg = PrivacyAwareMisraGries.from_stream(K, stream).counters()
        pamg_neighbour = PrivacyAwareMisraGries.from_stream(K, neighbour).counters()
        pamg_gap = max(abs(pamg.get(key, 0.0) - pamg_neighbour.get(key, 0.0))
                       for key in set(pamg) | set(pamg_neighbour))
        rows.append({
            "m": m,
            "k": K,
            "MG single-counter gap": mg_gap,
            "MG gap predicted (Lemma 25)": float(m),
            "PAMG max counter gap": pamg_gap,
            "PAMG bound (Lemma 27)": 1.0,
        })
    return rows


def _error_rows() -> list:
    rows = []
    for m in (2, 4, 8):
        stream = distinct_user_stream(3_000, 400, max_contribution=m, exponent=1.3,
                                      rng=20 + m)
        truth = ExactCounter().update_sets(stream)
        total = user_stream_total_length(stream)
        for k in (16, 64):
            sketch = PrivacyAwareMisraGries.from_stream(k, stream)
            worst = max(abs(sketch.estimate(element) - truth.estimate(element))
                        for element in range(400))
            rows.append({
                "m": m,
                "k": k,
                "N (total elements)": total,
                "PAMG max error": worst,
                "bound N/(k+1)": total / (k + 1),
            })
    return rows


@pytest.mark.experiment("E7")
def test_e7_lemma25_gap(benchmark):
    rows = run_once(benchmark, _gap_rows)
    for row in rows:
        assert row["MG single-counter gap"] == pytest.approx(row["MG gap predicted (Lemma 25)"])
        assert row["PAMG max counter gap"] <= 1.0 + 1e-9
    print_experiment("E7a", "Counter gap between neighbouring sketches: MG scales with m, PAMG does not",
                     format_table(rows))


@pytest.mark.experiment("E7")
def test_e7_pamg_error(benchmark):
    rows = run_once(benchmark, _error_rows)
    for row in rows:
        assert row["PAMG max error"] <= row["bound N/(k+1)"] + 1e-9
    print_experiment("E7b", "PAMG estimation error vs the N/(k+1) bound (Lemma 26)",
                     format_table(rows))
