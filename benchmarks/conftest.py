"""Shared configuration for the benchmark harness.

Every experiment benchmark runs its measurement exactly once per pytest
invocation (``rounds=1``) — the quantity of interest is the *accuracy table*
it prints, not sub-millisecond timing — except for the E11 performance
benchmarks, which use pytest-benchmark's normal repeated timing.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the printed tables; EXPERIMENTS.md records the reference output.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "experiment(id): paper-reproduction experiment id")
