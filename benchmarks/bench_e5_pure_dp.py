"""Experiment E5 — Section 6: sensitivity reduction and pure epsilon-DP release.

Two tables:

1. the l1-sensitivity of the Algorithm 3 post-processed sketch measured over
   deletion neighbours (Lemma 16 bound: < 2, versus k for the raw sketch), and
   the post-processed sketch's error (Lemma 15 bound: n/(k+1));
2. the maximum error of the pure epsilon-DP release built on it versus the
   Chan et al. pure-DP release (noise k/eps), across universe sizes.
"""

import pytest

from repro.analysis import format_table, summarize_errors
from repro.analysis.bounds import chan_error_bound, pure_dp_error_bound
from repro.baselines import ChanPrivateMisraGries
from repro.core import PureDPMisraGries, reduce_sensitivity
from repro.dp.sensitivity import l1_distance, neighbouring_streams_by_deletion
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import mg_worst_case_stream, zipf_stream

from _common import print_experiment, run_once

EPSILON = 1.0
K = 64


def _sensitivity_rows() -> list:
    rows = []
    for label, stream in [
        ("zipf(1.2), n=2000", zipf_stream(2_000, 100, exponent=1.2, rng=4)),
        ("worst-case, n~2000", mg_worst_case_stream(K, repetitions=2_000 // (K + 1))),
    ]:
        raw_base = MisraGriesSketch.from_stream(K, stream).counters()
        reduced_base = reduce_sensitivity(MisraGriesSketch.from_stream(K, stream))
        raw_worst, reduced_worst = 0.0, 0.0
        for pair in neighbouring_streams_by_deletion(stream, max_pairs=80, rng=0):
            neighbour_sketch = MisraGriesSketch.from_stream(K, list(pair.neighbour))
            raw_worst = max(raw_worst, l1_distance(raw_base, neighbour_sketch.counters()))
            reduced_worst = max(reduced_worst,
                                l1_distance(reduced_base, reduce_sensitivity(neighbour_sketch)))
        truth = ExactCounter.from_stream(stream).counters()
        reduced_error = summarize_errors(reduced_base, truth).max_error
        rows.append({
            "workload": label,
            "k": K,
            "raw sketch l1 (observed)": raw_worst,
            "reduced l1 (observed)": reduced_worst,
            "reduced l1 bound (Lemma 16)": 2.0,
            "reduced max error": reduced_error,
            "error bound n/(k+1)": len(stream) / (K + 1),
        })
    return rows


def _release_rows() -> list:
    # A larger sketch (k = 256) makes the asymptotic difference visible in the
    # maximum error: the sketch term n/(k+1) is small, so the noise term
    # (2 log d / eps for us, k log d / eps for Chan et al.) dominates.
    rows = []
    n = 20_000
    k = 256
    for universe in (1_000, 5_000, 20_000):
        stream = zipf_stream(n, universe, exponent=1.3, rng=5)
        truth = ExactCounter.from_stream(stream).counters()
        ours = PureDPMisraGries(epsilon=EPSILON, universe_size=universe)
        chan = ChanPrivateMisraGries(epsilon=EPSILON, k=k, universe_size=universe)
        ours_summary = summarize_errors(ours.run(stream, k, rng=6), truth,
                                        universe=range(universe))
        chan_summary = summarize_errors(chan.run(stream, rng=7), truth,
                                        universe=range(universe))
        rows.append({
            "universe d": universe,
            "k": k,
            "epsilon": EPSILON,
            "ours (Sec 6) max err": ours_summary.max_error,
            "ours bound": pure_dp_error_bound(n, k, EPSILON, universe, beta=0.05),
            "Chan max err": chan_summary.max_error,
            "Chan bound": chan_error_bound(n, k, EPSILON, universe, beta=0.05),
            "ours mean abs err": ours_summary.mean_absolute_error,
            "Chan mean abs err": chan_summary.mean_absolute_error,
        })
    return rows


@pytest.mark.experiment("E5")
def test_e5_sensitivity_reduction(benchmark):
    rows = run_once(benchmark, _sensitivity_rows)
    for row in rows:
        assert row["reduced l1 (observed)"] < 2.0
        assert row["reduced max error"] <= row["error bound n/(k+1)"] + 1e-9
    # The raw sketch really does move by much more than 2 on worst-case input.
    assert any(row["raw sketch l1 (observed)"] > 10.0 for row in rows)
    print_experiment("E5a", "Algorithm 3: observed sensitivity and error",
                     format_table(rows))


@pytest.mark.experiment("E5")
def test_e5_pure_dp_release(benchmark):
    rows = run_once(benchmark, _release_rows)
    for row in rows:
        assert row["ours (Sec 6) max err"] <= row["ours bound"]
        # With the noise term dominating, the k/eps-noise baseline loses on
        # maximum error and, having perturbed every universe element by
        # Laplace(k/eps), loses the mean absolute error by a wide margin.
        assert row["ours (Sec 6) max err"] < row["Chan max err"]
        assert row["ours mean abs err"] * 10 < row["Chan mean abs err"]
    print_experiment("E5b", "Pure eps-DP release: Section 6 vs Chan et al. across universe sizes",
                     format_table(rows))
