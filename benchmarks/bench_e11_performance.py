"""Experiment E11 — runtime and memory characteristics.

The paper's claim is not about wall-clock speed, but a practical release of
the system should document it: MG updates are O(1) amortized, the private
release is O(k) on top, and memory is 2k words regardless of the universe.
These benchmarks use pytest-benchmark's timing (multiple rounds) for the
update/release costs and print a summary table of throughput and memory.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import StabilityHistogram
from repro.core import PrivateMisraGries
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import zipf_stream

from _common import print_experiment

N = 100_000
UNIVERSE = 50_000
STREAM = zipf_stream(N, UNIVERSE, exponent=1.2, rng=50)


@pytest.mark.experiment("E11")
@pytest.mark.parametrize("k", [64, 256, 1024])
def test_e11_mg_update_throughput(benchmark, k):
    def build():
        return MisraGriesSketch.from_stream(k, STREAM)

    sketch = benchmark(build)
    assert sketch.stream_length == N
    assert len(sketch.raw_counters()) == k


@pytest.mark.experiment("E11")
@pytest.mark.parametrize("k", [64, 256, 1024])
def test_e11_pmg_release_cost(benchmark, k):
    sketch = MisraGriesSketch.from_stream(k, STREAM)
    mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)

    histogram = benchmark(lambda: mechanism.release(sketch, rng=0))
    assert len(histogram) <= k


@pytest.mark.experiment("E11")
def test_e11_exact_histogram_baseline_cost(benchmark):
    def build():
        counter = ExactCounter.from_stream(STREAM)
        return StabilityHistogram(epsilon=1.0, delta=1e-6).release(counter, rng=0)

    histogram = benchmark(build)
    assert len(histogram) > 0


@pytest.mark.experiment("E11")
def test_e11_memory_summary(benchmark):
    def summarize():
        rows = []
        distinct = ExactCounter.from_stream(STREAM).distinct()
        for k in (64, 256, 1024):
            sketch = MisraGriesSketch.from_stream(k, STREAM)
            rows.append({
                "k": k,
                "stream length": N,
                "distinct elements": distinct,
                "sketch memory (words)": sketch.memory_words(),
                "exact histogram memory (words)": 2 * distinct,
            })
        return rows

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)
    for row in rows:
        assert row["sketch memory (words)"] == 2 * row["k"]
        assert row["sketch memory (words)"] < row["exact histogram memory (words)"]
    print_experiment("E11", "Memory use: 2k words vs one counter per distinct element",
                     format_table(rows))
