"""Experiment E2 — Theorem 14 / Lemma 13: PMG noise error is independent of k.

Sweeps the sketch size k and the privacy parameters and reports

* the maximum released-vs-sketch deviation (the "noise error" of Lemma 13),
* the maximum released-vs-truth error and the Theorem 14 bound,
* the measured per-element mean squared error and the Theorem 14 MSE bound.

The headline shape: the noise error stays flat as k grows (it only moves with
epsilon and delta), while for the Chan et al. baseline (E3) it grows linearly.
"""

import pytest

from repro.analysis import format_table, summarize_errors
from repro.analysis.bounds import pmg_error_bound, pmg_mse_bound, pmg_noise_error_bound
from repro.core import PrivateMisraGries
from repro.dp.rng import spawn_rngs
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import zipf_stream

from _common import print_experiment, run_once

N = 60_000
UNIVERSE = 5_000
REPETITIONS = 5
K_VALUES = [16, 64, 256, 512]
PRIVACY = [(0.5, 1e-6), (1.0, 1e-6), (2.0, 1e-8)]


def _noise_error(histogram, sketch_counters) -> float:
    worst = 0.0
    for key, value in sketch_counters.items():
        worst = max(worst, abs(histogram.estimate(key) - value))
    return worst


def _run() -> list:
    stream = zipf_stream(N, UNIVERSE, exponent=1.2, rng=2)
    truth = ExactCounter.from_stream(stream).counters()
    rows = []
    for epsilon, delta in PRIVACY:
        for k in K_VALUES:
            sketch = MisraGriesSketch.from_stream(k, stream)
            counters = sketch.counters()
            mechanism = PrivateMisraGries(epsilon=epsilon, delta=delta)
            noise_errors, total_errors, mses = [], [], []
            for rng in spawn_rngs(1234 + k, REPETITIONS):
                histogram = mechanism.release(sketch, rng=rng)
                summary = summarize_errors(histogram, truth)
                noise_errors.append(_noise_error(histogram, counters))
                total_errors.append(summary.max_error)
                mses.append(summary.mean_squared_error)
            rows.append({
                "epsilon": epsilon,
                "delta": delta,
                "k": k,
                "noise err (measured)": max(noise_errors),
                "noise err (Lemma 13)": pmg_noise_error_bound(k, epsilon, delta, beta=0.05),
                "total err (measured)": max(total_errors),
                "total err (Thm 14)": pmg_error_bound(N, k, epsilon, delta, beta=0.05),
                "mse (measured)": sum(mses) / len(mses),
                "mse bound (Thm 14)": pmg_mse_bound(N, k, epsilon, delta),
            })
    return rows


@pytest.mark.experiment("E2")
def test_e2_pmg_error(benchmark):
    rows = run_once(benchmark, _run)
    for row in rows:
        assert row["total err (measured)"] <= row["total err (Thm 14)"]
        assert row["mse (measured)"] <= row["mse bound (Thm 14)"]
    # Noise error does not scale with k: largest-k noise error stays within a
    # small factor of smallest-k noise error for the same privacy parameters.
    for epsilon, delta in PRIVACY:
        subset = [row for row in rows if row["epsilon"] == epsilon and row["delta"] == delta]
        smallest, largest = subset[0], subset[-1]
        assert largest["noise err (measured)"] <= 3.0 * smallest["noise err (Lemma 13)"]
    print_experiment("E2", "PMG error vs k, epsilon, delta (Lemma 13 / Theorem 14)",
                     format_table(rows))
