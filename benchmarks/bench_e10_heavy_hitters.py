"""Experiment E10 — end-to-end heavy hitters and the privacy audit.

Part (a): phi-heavy-hitter precision / recall / F1 of the PMG pipeline against
the Chan et al. and corrected Böhler-Kerschbaum baselines and against the
non-streaming stability histogram, on Zipf workloads of varying skew.

Part (b): Monte-Carlo privacy audit on the "decrement-all" worst-case
neighbouring pair — Algorithm 2 stays within its (epsilon, delta) budget while
the as-published Böhler-Kerschbaum mechanism (sensitivity-1 noise) is caught
exceeding it, which is the paper's critique made empirical.
"""

import pytest

from repro.analysis import audit_mechanism, format_table, heavy_hitter_scores
from repro.baselines import BohlerKerschbaumMG, ChanPrivateMisraGries, StabilityHistogram
from repro.core import PrivateMisraGries, true_heavy_hitters
from repro.core.heavy_hitters import heavy_hitters_from_histogram
from repro.streams import zipf_stream

from _common import print_experiment, run_once

N = 80_000
UNIVERSE = 5_000
K = 256
EPSILON, DELTA = 1.0, 1e-6
PHI = 0.005


def _heavy_hitter_rows() -> list:
    rows = []
    for exponent in (1.05, 1.2, 1.5):
        stream = zipf_stream(N, UNIVERSE, exponent=exponent, rng=40)
        truth = true_heavy_hitters(stream, PHI)

        def evaluate(name, histogram, slack):
            predicted = heavy_hitters_from_histogram(histogram, PHI, stream_length=N, slack=slack)
            scores = heavy_hitter_scores(predicted, truth)
            rows.append({
                "zipf exponent": exponent,
                "true HH": len(truth),
                "mechanism": name,
                "precision": scores["precision"],
                "recall": scores["recall"],
                "f1": scores["f1"],
            })

        pmg = PrivateMisraGries(epsilon=EPSILON, delta=DELTA)
        evaluate("PMG", pmg.run(stream, K, rng=41), pmg.error_bound_vs_truth(K, N))
        chan = ChanPrivateMisraGries(epsilon=EPSILON, k=K, delta=DELTA)
        evaluate("Chan", chan.run(stream, rng=42),
                 N / (K + 1) + 2 * chan.noise_scale + chan.threshold)
        bk = BohlerKerschbaumMG(epsilon=EPSILON, delta=DELTA, k=K)
        evaluate("BK corrected", bk.run(stream, rng=43),
                 N / (K + 1) + 2 * bk.noise_scale + bk.threshold)
        gold = StabilityHistogram(epsilon=EPSILON, delta=DELTA)
        evaluate("exact+Laplace (non-streaming)", gold.run(stream, rng=44),
                 2.0 / EPSILON + gold.threshold)
    return rows


def _audit_rows() -> list:
    k = 8
    base = [f"e{i}" for i in range(k)] * 30
    stream, neighbour = base + ["trigger"], base
    rows = []
    pmg = PrivateMisraGries(epsilon=1.0, delta=1e-3)
    result = audit_mechanism(lambda data, rng: pmg.run(data, k=k, rng=rng),
                             stream, neighbour, claimed_epsilon=1.0, claimed_delta=1e-3,
                             trials=2_000, rng=45)
    rows.append({"mechanism": "PMG (Algorithm 2)", **result.as_dict()})
    bk = BohlerKerschbaumMG(epsilon=1.0, delta=1e-3, k=k, as_published=True)
    result = audit_mechanism(lambda data, rng: bk.run(data, rng=rng),
                             stream, neighbour, claimed_epsilon=1.0, claimed_delta=1e-3,
                             trials=2_000, rng=46)
    rows.append({"mechanism": "BK as published", **result.as_dict()})
    return rows


@pytest.mark.experiment("E10")
def test_e10_heavy_hitter_quality(benchmark):
    rows = run_once(benchmark, _heavy_hitter_rows)
    for exponent in (1.2, 1.5):
        subset = {row["mechanism"]: row for row in rows if row["zipf exponent"] == exponent}
        assert subset["PMG"]["f1"] >= subset["Chan"]["f1"]
        assert subset["PMG"]["f1"] >= subset["BK corrected"]["f1"]
        assert subset["PMG"]["recall"] >= 0.9
    print_experiment("E10a", "Heavy-hitter quality across workload skew",
                     format_table(rows))


@pytest.mark.experiment("E10")
def test_e10_privacy_audit(benchmark):
    rows = run_once(benchmark, _audit_rows)
    audit = {row["mechanism"]: row for row in rows}
    assert not audit["PMG (Algorithm 2)"]["violated"]
    assert audit["BK as published"]["violated"]
    print_experiment("E10b", "Monte-Carlo privacy audit on the decrement-all worst case",
                     format_table(rows, columns=["mechanism", "claimed_epsilon", "claimed_delta",
                                                 "estimated_epsilon_lower_bound", "violated",
                                                 "worst_event", "trials"]))
